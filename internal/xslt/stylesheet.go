// Package xslt implements an XSLT 1.0 subset: stylesheet parsing and a
// functional (DOM-walking, template-matching) interpreter.
//
// The interpreter is the paper's "XSLT no rewrite" baseline: it views the
// input document as a tree and performs rule-based template matching at
// run time, exactly the execution model the XSLT-rewrite technique is
// designed to avoid. The rewriter in internal/core consumes the same
// Stylesheet model.
package xslt

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Namespace is the XSLT 1.0 namespace URI.
const Namespace = "http://www.w3.org/1999/XSL/Transform"

// Stylesheet is a parsed XSLT stylesheet.
type Stylesheet struct {
	Version string
	// OutputMethod is the method attribute of xsl:output ("xml", "html",
	// "text"), or "" when unspecified.
	OutputMethod string
	// Templates in document order. Union match patterns are expanded into
	// one Template per alternative, per XSLT 1.0 §5.5.
	Templates []*Template
	// GlobalVars holds top-level xsl:variable and xsl:param definitions in
	// document order.
	GlobalVars []*VarDef
	// Keys holds xsl:key declarations.
	Keys []*KeyDef
	// StripSpace and PreserveSpace hold the element-name lists of
	// xsl:strip-space / xsl:preserve-space ("*" matches all).
	StripSpace    []string
	PreserveSpace []string
	// Source is the original stylesheet text when parsed from text.
	Source string
}

// Template is one xsl:template rule.
type Template struct {
	// Match is the parsed match pattern; nil for named-only templates.
	Match    *xpath.Pattern
	MatchSrc string
	// Name is the template name for call-template, or "".
	Name string
	// Mode restricts the template to apply-templates invocations with the
	// same mode.
	Mode string
	// Priority is the resolved priority (explicit or default).
	Priority float64
	// Params are the xsl:param declarations at the start of the body.
	Params []*VarDef
	// Body is the sequence constructor.
	Body []Instruction
	// Index is the template's position in the stylesheet; later templates
	// win ties during conflict resolution.
	Index int
}

// String identifies the template for error messages and traces.
func (t *Template) String() string {
	switch {
	case t.MatchSrc != "" && t.Name != "":
		return fmt.Sprintf("template match=%q name=%q", t.MatchSrc, t.Name)
	case t.MatchSrc != "":
		return fmt.Sprintf("template match=%q", t.MatchSrc)
	default:
		return fmt.Sprintf("template name=%q", t.Name)
	}
}

// KeyDef is an xsl:key declaration: nodes matching Match are indexed under
// the string value(s) of Use.
type KeyDef struct {
	Name  string
	Match *xpath.Pattern
	Use   xpath.Expr
}

// VarDef is an xsl:variable, xsl:param or xsl:with-param definition.
// Exactly one of Select or Body provides the value; with neither, the value
// is the empty string.
type VarDef struct {
	Name   string
	Select xpath.Expr
	Body   []Instruction
	// IsParam distinguishes xsl:param (overridable) from xsl:variable.
	IsParam bool
}

// SortKey is an xsl:sort specification.
type SortKey struct {
	Select xpath.Expr // defaults to "."
	// Numeric selects data-type="number" comparison.
	Numeric bool
	// Descending selects order="descending".
	Descending bool
}

// Instruction is a node of a parsed sequence constructor.
type Instruction interface{ isInstruction() }

// LiteralElement is a literal result element with attribute value templates.
type LiteralElement struct {
	QName string // as written, e.g. "table" or "html:td"
	Attrs []LiteralAttr
	Body  []Instruction
}

// LiteralAttr is an attribute of a literal result element; its value is an
// attribute value template.
type LiteralAttr struct {
	QName string
	Value *AVT
}

// Text is literal text content.
type Text struct{ Data string }

// ValueOf is xsl:value-of.
type ValueOf struct{ Select xpath.Expr }

// ApplyTemplates is xsl:apply-templates.
type ApplyTemplates struct {
	// Select is nil for the default child::node().
	Select xpath.Expr
	Mode   string
	Sorts  []SortKey
	Params []*VarDef
	// TraceID is assigned by compilers that trace instantiations (the
	// XSLTVM partial evaluator); -1 when untraced.
	TraceID int
}

// CallTemplate is xsl:call-template.
type CallTemplate struct {
	Name   string
	Params []*VarDef
}

// ForEach is xsl:for-each.
type ForEach struct {
	Select xpath.Expr
	Sorts  []SortKey
	Body   []Instruction
}

// If is xsl:if.
type If struct {
	Test xpath.Expr
	Body []Instruction
}

// Choose is xsl:choose with its xsl:when branches and optional otherwise.
type Choose struct {
	Whens     []When
	Otherwise []Instruction
}

// When is one xsl:when branch.
type When struct {
	Test xpath.Expr
	Body []Instruction
}

// Copy is xsl:copy (shallow copy of the context node).
type Copy struct{ Body []Instruction }

// CopyOf is xsl:copy-of (deep copy of the selected value).
type CopyOf struct{ Select xpath.Expr }

// DeclareVar is xsl:variable or xsl:param inside a body.
type DeclareVar struct{ Def *VarDef }

// MakeElement is xsl:element with a computed (AVT) name.
type MakeElement struct {
	Name *AVT
	Body []Instruction
}

// MakeAttribute is xsl:attribute.
type MakeAttribute struct {
	Name *AVT
	Body []Instruction
}

// MakeText is xsl:text (text emitted verbatim, no whitespace stripping).
type MakeText struct{ Data string }

// MakeComment is xsl:comment.
type MakeComment struct{ Body []Instruction }

// MakePI is xsl:processing-instruction.
type MakePI struct {
	Name *AVT
	Body []Instruction
}

// NumberInstr is a simplified xsl:number: value= expression formatted as a
// decimal integer; without value=, the 1-based position of the context node
// among like-named siblings (level="single", default count).
type NumberInstr struct {
	Value xpath.Expr // may be nil
}

// Message is xsl:message; the interpreter collects messages rather than
// writing to stderr.
type Message struct {
	Body      []Instruction
	Terminate bool
}

func (*LiteralElement) isInstruction() {}
func (*Text) isInstruction()           {}
func (*ValueOf) isInstruction()        {}
func (*ApplyTemplates) isInstruction() {}
func (*CallTemplate) isInstruction()   {}
func (*ForEach) isInstruction()        {}
func (*If) isInstruction()             {}
func (*Choose) isInstruction()         {}
func (*Copy) isInstruction()           {}
func (*CopyOf) isInstruction()         {}
func (*DeclareVar) isInstruction()     {}
func (*MakeElement) isInstruction()    {}
func (*MakeAttribute) isInstruction()  {}
func (*MakeText) isInstruction()       {}
func (*MakeComment) isInstruction()    {}
func (*MakePI) isInstruction()         {}
func (*NumberInstr) isInstruction()    {}
func (*Message) isInstruction()        {}

// CompileError reports a static error in a stylesheet.
type CompileError struct {
	Element string
	Msg     string
}

func (e *CompileError) Error() string {
	if e.Element != "" {
		return fmt.Sprintf("xslt: <%s>: %s", e.Element, e.Msg)
	}
	return "xslt: " + e.Msg
}

func compileErrf(elem, format string, args ...any) error {
	return &CompileError{Element: elem, Msg: fmt.Sprintf(format, args...)}
}

// ParseStylesheet parses stylesheet text. xsl:include is rejected; use
// ParseStylesheetWithResolver to supply included documents.
func ParseStylesheet(src string) (*Stylesheet, error) {
	return ParseStylesheetWithResolver(src, nil)
}

// Resolver loads the text of an included stylesheet by href.
type Resolver func(href string) (string, error)

// ParseStylesheetWithResolver parses stylesheet text, splicing the
// top-level declarations of each xsl:include target in place (XSLT 1.0
// §2.6.1). Includes may nest; cycles are rejected.
func ParseStylesheetWithResolver(src string, resolve Resolver) (*Stylesheet, error) {
	doc, err := parseWithIncludes(src, resolve, map[string]bool{})
	if err != nil {
		return nil, err
	}
	sheet, err := FromDocument(doc)
	if err != nil {
		return nil, err
	}
	sheet.Source = src
	return sheet, nil
}

// parseWithIncludes parses one stylesheet document and splices includes.
func parseWithIncludes(src string, resolve Resolver, active map[string]bool) (*xmltree.Node, error) {
	doc, err := xmltree.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("xslt: stylesheet is not well-formed: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil {
		return doc, nil
	}
	var merged []*xmltree.Node
	for _, child := range root.Children {
		if child.Kind == xmltree.ElementNode && child.NamespaceURI == Namespace && child.Name == "include" {
			href, ok := child.Attr("href")
			if !ok || href == "" {
				return nil, compileErrf("xsl:include", "missing href")
			}
			if resolve == nil {
				return nil, compileErrf("xsl:include", "no resolver supplied for %q", href)
			}
			if active[href] {
				return nil, compileErrf("xsl:include", "inclusion cycle through %q", href)
			}
			active[href] = true
			incSrc, err := resolve(href)
			if err != nil {
				return nil, compileErrf("xsl:include", "resolving %q: %v", href, err)
			}
			incDoc, err := parseWithIncludes(incSrc, resolve, active)
			if err != nil {
				return nil, fmt.Errorf("xslt: included %q: %w", href, err)
			}
			delete(active, href)
			incRoot := incDoc.DocumentElement()
			if incRoot == nil || incRoot.NamespaceURI != Namespace ||
				(incRoot.Name != "stylesheet" && incRoot.Name != "transform") {
				return nil, compileErrf("xsl:include", "%q is not a stylesheet", href)
			}
			for _, inc := range incRoot.Children {
				inc.Parent = root
				merged = append(merged, inc)
			}
			continue
		}
		merged = append(merged, child)
	}
	root.Children = merged
	doc.Renumber()
	return doc, nil
}

// FromDocument builds a Stylesheet from a parsed stylesheet document.
func FromDocument(doc *xmltree.Node) (*Stylesheet, error) {
	root := doc.DocumentElement()
	if root == nil {
		return nil, compileErrf("", "empty stylesheet document")
	}
	if root.NamespaceURI != Namespace || (root.Name != "stylesheet" && root.Name != "transform") {
		return nil, compileErrf(root.QName(), "root element must be xsl:stylesheet or xsl:transform")
	}
	sheet := &Stylesheet{Version: root.AttrValue("version")}

	for _, child := range root.Children {
		if child.Kind == xmltree.TextNode {
			if strings.TrimSpace(child.Data) != "" {
				return nil, compileErrf("xsl:stylesheet", "unexpected text at top level: %q", child.Data)
			}
			continue
		}
		if child.Kind != xmltree.ElementNode {
			continue
		}
		if child.NamespaceURI != Namespace {
			return nil, compileErrf(child.QName(), "non-XSLT element at stylesheet top level")
		}
		switch child.Name {
		case "template":
			if err := sheet.addTemplate(child); err != nil {
				return nil, err
			}
		case "output":
			sheet.OutputMethod = child.AttrValue("method")
		case "variable", "param":
			def, err := parseVarDef(child)
			if err != nil {
				return nil, err
			}
			sheet.GlobalVars = append(sheet.GlobalVars, def)
		case "key":
			kd, err := parseKeyDef(child)
			if err != nil {
				return nil, err
			}
			sheet.Keys = append(sheet.Keys, kd)
		case "strip-space", "preserve-space":
			names, ok := child.Attr("elements")
			if !ok {
				return nil, compileErrf("xsl:"+child.Name, "missing elements attribute")
			}
			list := strings.Fields(names)
			if child.Name == "strip-space" {
				sheet.StripSpace = append(sheet.StripSpace, list...)
			} else {
				sheet.PreserveSpace = append(sheet.PreserveSpace, list...)
			}
		case "decimal-format", "namespace-alias", "attribute-set", "import", "include":
			return nil, compileErrf("xsl:"+child.Name, "not supported by this implementation")
		default:
			return nil, compileErrf("xsl:"+child.Name, "unknown top-level element")
		}
	}
	if len(sheet.Templates) == 0 && len(sheet.GlobalVars) == 0 {
		// An empty stylesheet is legal: everything is handled by the
		// built-in templates (paper Table 20).
		_ = sheet
	}
	return sheet, nil
}

func parseKeyDef(el *xmltree.Node) (*KeyDef, error) {
	name, ok := el.Attr("name")
	if !ok || name == "" {
		return nil, compileErrf("xsl:key", "missing name")
	}
	matchSrc, ok := el.Attr("match")
	if !ok {
		return nil, compileErrf("xsl:key", "missing match")
	}
	pat, err := xpath.ParsePattern(matchSrc)
	if err != nil {
		return nil, compileErrf("xsl:key", "bad match %q: %v", matchSrc, err)
	}
	useSrc, ok := el.Attr("use")
	if !ok {
		return nil, compileErrf("xsl:key", "missing use")
	}
	use, err := xpath.Parse(useSrc)
	if err != nil {
		return nil, compileErrf("xsl:key", "bad use %q: %v", useSrc, err)
	}
	return &KeyDef{Name: name, Match: pat, Use: use}, nil
}

func (s *Stylesheet) addTemplate(el *xmltree.Node) error {
	matchSrc, hasMatch := el.Attr("match")
	name, hasName := el.Attr("name")
	if !hasMatch && !hasName {
		return compileErrf("xsl:template", "needs a match or name attribute")
	}
	mode := el.AttrValue("mode")

	var explicitPriority *float64
	if prio, ok := el.Attr("priority"); ok {
		p, err := strconv.ParseFloat(prio, 64)
		if err != nil {
			return compileErrf("xsl:template", "bad priority %q", prio)
		}
		explicitPriority = &p
	}

	params, body, err := parseTemplateBody(el)
	if err != nil {
		return err
	}

	if !hasMatch {
		s.Templates = append(s.Templates, &Template{
			Name: name, Mode: mode, Params: params, Body: body,
			Index: len(s.Templates),
		})
		return nil
	}

	pat, err := xpath.ParsePattern(matchSrc)
	if err != nil {
		return compileErrf("xsl:template", "bad match pattern %q: %v", matchSrc, err)
	}
	// Union patterns become one rule per alternative (same body).
	for _, alt := range pat.SplitUnion() {
		prio, err := alt.DefaultPriority()
		if err != nil {
			return compileErrf("xsl:template", "match pattern %q: %v", matchSrc, err)
		}
		if explicitPriority != nil {
			prio = *explicitPriority
		}
		s.Templates = append(s.Templates, &Template{
			Match: alt, MatchSrc: alt.String(), Name: name, Mode: mode,
			Priority: prio, Params: params, Body: body,
			Index: len(s.Templates),
		})
		name = "" // only the first alternative carries the name
	}
	return nil
}

// parseTemplateBody splits leading xsl:param declarations from the rest of
// the sequence constructor.
func parseTemplateBody(el *xmltree.Node) ([]*VarDef, []Instruction, error) {
	var params []*VarDef
	rest := make([]*xmltree.Node, 0, len(el.Children))
	inParams := true
	for _, c := range el.Children {
		if inParams && c.Kind == xmltree.ElementNode && c.NamespaceURI == Namespace && c.Name == "param" {
			def, err := parseVarDef(c)
			if err != nil {
				return nil, nil, err
			}
			def.IsParam = true
			params = append(params, def)
			continue
		}
		if c.Kind == xmltree.TextNode && strings.TrimSpace(c.Data) == "" && inParams {
			continue
		}
		inParams = false
		rest = append(rest, c)
	}
	body, err := parseSequence(rest)
	if err != nil {
		return nil, nil, err
	}
	return params, body, nil
}

func parseVarDef(el *xmltree.Node) (*VarDef, error) {
	name, ok := el.Attr("name")
	if !ok || name == "" {
		return nil, compileErrf("xsl:"+el.Name, "missing name attribute")
	}
	def := &VarDef{Name: name, IsParam: el.Name == "param"}
	if sel, ok := el.Attr("select"); ok {
		e, err := xpath.Parse(sel)
		if err != nil {
			return nil, compileErrf("xsl:"+el.Name, "bad select %q: %v", sel, err)
		}
		def.Select = e
		return def, nil
	}
	body, err := parseSequence(el.Children)
	if err != nil {
		return nil, err
	}
	def.Body = body
	return def, nil
}

// parseSequence compiles a list of content nodes into instructions.
// Whitespace-only text between instructions is stripped (the common
// xml:space="default" behaviour); text inside literal elements survives when
// it has any non-whitespace, and xsl:text always survives verbatim.
func parseSequence(nodes []*xmltree.Node) ([]Instruction, error) {
	var out []Instruction
	for _, n := range nodes {
		switch n.Kind {
		case xmltree.TextNode:
			if strings.TrimSpace(n.Data) == "" {
				continue
			}
			out = append(out, &Text{Data: n.Data})
		case xmltree.ElementNode:
			instr, err := parseInstruction(n)
			if err != nil {
				return nil, err
			}
			if instr != nil {
				out = append(out, instr)
			}
		case xmltree.CommentNode, xmltree.ProcInstNode:
			// Comments and PIs in the stylesheet are ignored.
		}
	}
	return out, nil
}

func parseInstruction(el *xmltree.Node) (Instruction, error) {
	if el.NamespaceURI != Namespace {
		return parseLiteralElement(el)
	}
	switch el.Name {
	case "value-of":
		sel, ok := el.Attr("select")
		if !ok {
			return nil, compileErrf("xsl:value-of", "missing select")
		}
		e, err := xpath.Parse(sel)
		if err != nil {
			return nil, compileErrf("xsl:value-of", "bad select %q: %v", sel, err)
		}
		return &ValueOf{Select: e}, nil

	case "apply-templates":
		at := &ApplyTemplates{Mode: el.AttrValue("mode"), TraceID: -1}
		if sel, ok := el.Attr("select"); ok {
			e, err := xpath.Parse(sel)
			if err != nil {
				return nil, compileErrf("xsl:apply-templates", "bad select %q: %v", sel, err)
			}
			at.Select = e
		}
		sorts, params, err := parseSortsAndParams(el, "xsl:apply-templates")
		if err != nil {
			return nil, err
		}
		at.Sorts, at.Params = sorts, params
		return at, nil

	case "call-template":
		name, ok := el.Attr("name")
		if !ok {
			return nil, compileErrf("xsl:call-template", "missing name")
		}
		_, params, err := parseSortsAndParams(el, "xsl:call-template")
		if err != nil {
			return nil, err
		}
		return &CallTemplate{Name: name, Params: params}, nil

	case "for-each":
		sel, ok := el.Attr("select")
		if !ok {
			return nil, compileErrf("xsl:for-each", "missing select")
		}
		e, err := xpath.Parse(sel)
		if err != nil {
			return nil, compileErrf("xsl:for-each", "bad select %q: %v", sel, err)
		}
		sorts, rest, err := splitSorts(el.Children)
		if err != nil {
			return nil, err
		}
		body, err := parseSequence(rest)
		if err != nil {
			return nil, err
		}
		return &ForEach{Select: e, Sorts: sorts, Body: body}, nil

	case "if":
		test, ok := el.Attr("test")
		if !ok {
			return nil, compileErrf("xsl:if", "missing test")
		}
		e, err := xpath.Parse(test)
		if err != nil {
			return nil, compileErrf("xsl:if", "bad test %q: %v", test, err)
		}
		body, err := parseSequence(el.Children)
		if err != nil {
			return nil, err
		}
		return &If{Test: e, Body: body}, nil

	case "choose":
		ch := &Choose{}
		for _, c := range el.Children {
			if c.Kind == xmltree.TextNode {
				if strings.TrimSpace(c.Data) != "" {
					return nil, compileErrf("xsl:choose", "unexpected text %q", c.Data)
				}
				continue
			}
			if c.Kind != xmltree.ElementNode {
				continue
			}
			if c.NamespaceURI != Namespace {
				return nil, compileErrf("xsl:choose", "unexpected element <%s>", c.QName())
			}
			switch c.Name {
			case "when":
				test, ok := c.Attr("test")
				if !ok {
					return nil, compileErrf("xsl:when", "missing test")
				}
				e, err := xpath.Parse(test)
				if err != nil {
					return nil, compileErrf("xsl:when", "bad test %q: %v", test, err)
				}
				body, err := parseSequence(c.Children)
				if err != nil {
					return nil, err
				}
				ch.Whens = append(ch.Whens, When{Test: e, Body: body})
			case "otherwise":
				body, err := parseSequence(c.Children)
				if err != nil {
					return nil, err
				}
				ch.Otherwise = body
			default:
				return nil, compileErrf("xsl:choose", "unexpected element xsl:%s", c.Name)
			}
		}
		if len(ch.Whens) == 0 {
			return nil, compileErrf("xsl:choose", "requires at least one xsl:when")
		}
		return ch, nil

	case "copy":
		body, err := parseSequence(el.Children)
		if err != nil {
			return nil, err
		}
		return &Copy{Body: body}, nil

	case "copy-of":
		sel, ok := el.Attr("select")
		if !ok {
			return nil, compileErrf("xsl:copy-of", "missing select")
		}
		e, err := xpath.Parse(sel)
		if err != nil {
			return nil, compileErrf("xsl:copy-of", "bad select %q: %v", sel, err)
		}
		return &CopyOf{Select: e}, nil

	case "variable", "param":
		def, err := parseVarDef(el)
		if err != nil {
			return nil, err
		}
		return &DeclareVar{Def: def}, nil

	case "element":
		name, ok := el.Attr("name")
		if !ok {
			return nil, compileErrf("xsl:element", "missing name")
		}
		avt, err := ParseAVT(name)
		if err != nil {
			return nil, compileErrf("xsl:element", "bad name AVT: %v", err)
		}
		body, err := parseSequence(el.Children)
		if err != nil {
			return nil, err
		}
		return &MakeElement{Name: avt, Body: body}, nil

	case "attribute":
		name, ok := el.Attr("name")
		if !ok {
			return nil, compileErrf("xsl:attribute", "missing name")
		}
		avt, err := ParseAVT(name)
		if err != nil {
			return nil, compileErrf("xsl:attribute", "bad name AVT: %v", err)
		}
		body, err := parseSequence(el.Children)
		if err != nil {
			return nil, err
		}
		return &MakeAttribute{Name: avt, Body: body}, nil

	case "text":
		var sb strings.Builder
		for _, c := range el.Children {
			if c.Kind != xmltree.TextNode {
				return nil, compileErrf("xsl:text", "may only contain text")
			}
			sb.WriteString(c.Data)
		}
		return &MakeText{Data: sb.String()}, nil

	case "comment":
		body, err := parseSequence(el.Children)
		if err != nil {
			return nil, err
		}
		return &MakeComment{Body: body}, nil

	case "processing-instruction":
		name, ok := el.Attr("name")
		if !ok {
			return nil, compileErrf("xsl:processing-instruction", "missing name")
		}
		avt, err := ParseAVT(name)
		if err != nil {
			return nil, compileErrf("xsl:processing-instruction", "bad name AVT: %v", err)
		}
		body, err := parseSequence(el.Children)
		if err != nil {
			return nil, err
		}
		return &MakePI{Name: avt, Body: body}, nil

	case "number":
		ni := &NumberInstr{}
		if v, ok := el.Attr("value"); ok {
			e, err := xpath.Parse(v)
			if err != nil {
				return nil, compileErrf("xsl:number", "bad value %q: %v", v, err)
			}
			ni.Value = e
		}
		return ni, nil

	case "message":
		body, err := parseSequence(el.Children)
		if err != nil {
			return nil, err
		}
		return &Message{Body: body, Terminate: el.AttrValue("terminate") == "yes"}, nil

	case "sort", "with-param":
		return nil, compileErrf("xsl:"+el.Name, "only allowed inside its parent instruction")

	case "apply-imports", "fallback", "import", "include":
		return nil, compileErrf("xsl:"+el.Name, "not supported by this implementation")
	}
	return nil, compileErrf("xsl:"+el.Name, "unknown instruction")
}

// parseSortsAndParams extracts xsl:sort and xsl:with-param children; no
// other element content is allowed.
func parseSortsAndParams(el *xmltree.Node, ctx string) ([]SortKey, []*VarDef, error) {
	var sorts []SortKey
	var params []*VarDef
	for _, c := range el.Children {
		if c.Kind == xmltree.TextNode {
			if strings.TrimSpace(c.Data) != "" {
				return nil, nil, compileErrf(ctx, "unexpected text %q", c.Data)
			}
			continue
		}
		if c.Kind != xmltree.ElementNode {
			continue
		}
		if c.NamespaceURI != Namespace {
			return nil, nil, compileErrf(ctx, "unexpected element <%s>", c.QName())
		}
		switch c.Name {
		case "sort":
			sk, err := parseSortKey(c)
			if err != nil {
				return nil, nil, err
			}
			sorts = append(sorts, sk)
		case "with-param":
			def, err := parseVarDef(c)
			if err != nil {
				return nil, nil, err
			}
			params = append(params, def)
		default:
			return nil, nil, compileErrf(ctx, "unexpected element xsl:%s", c.Name)
		}
	}
	return sorts, params, nil
}

// splitSorts separates leading xsl:sort elements (for xsl:for-each) from the
// remaining body content.
func splitSorts(nodes []*xmltree.Node) ([]SortKey, []*xmltree.Node, error) {
	var sorts []SortKey
	var rest []*xmltree.Node
	leading := true
	for _, c := range nodes {
		if leading && c.Kind == xmltree.ElementNode && c.NamespaceURI == Namespace && c.Name == "sort" {
			sk, err := parseSortKey(c)
			if err != nil {
				return nil, nil, err
			}
			sorts = append(sorts, sk)
			continue
		}
		if c.Kind == xmltree.TextNode && strings.TrimSpace(c.Data) == "" && leading {
			continue
		}
		leading = false
		rest = append(rest, c)
	}
	return sorts, rest, nil
}

func parseSortKey(el *xmltree.Node) (SortKey, error) {
	sel := "." // the sort key defaults to the node's string value
	if s, ok := el.Attr("select"); ok {
		sel = s
	}
	e, err := xpath.Parse(sel)
	if err != nil {
		return SortKey{}, compileErrf("xsl:sort", "bad select %q: %v", sel, err)
	}
	return SortKey{
		Select:     e,
		Numeric:    el.AttrValue("data-type") == "number",
		Descending: el.AttrValue("order") == "descending",
	}, nil
}

func parseLiteralElement(el *xmltree.Node) (Instruction, error) {
	lit := &LiteralElement{QName: el.QName()}
	for _, a := range el.Attrs {
		if a.Prefix == "xmlns" || (a.Prefix == "" && a.Name == "xmlns") {
			continue // namespace declarations don't become output attrs
		}
		avt, err := ParseAVT(a.Data)
		if err != nil {
			return nil, compileErrf(el.QName(), "bad AVT in attribute %s: %v", a.QName(), err)
		}
		lit.Attrs = append(lit.Attrs, LiteralAttr{QName: a.QName(), Value: avt})
	}
	body, err := parseSequence(el.Children)
	if err != nil {
		return nil, err
	}
	lit.Body = body
	return lit, nil
}
