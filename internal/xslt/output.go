package xslt

import (
	"fmt"

	"repro/internal/xmltree"
)

// OutputBuilder accumulates a result tree. The root is a document node
// used as a fragment container; OpenElement/CloseElement maintain the
// current insertion point. It is shared by the tree-walking interpreter
// and the XSLTVM bytecode executor.
type OutputBuilder struct {
	root  *xmltree.Node
	stack []*xmltree.Node
}

// NewOutputBuilder returns an empty builder.
func NewOutputBuilder() *OutputBuilder {
	root := xmltree.NewDocument()
	return &OutputBuilder{root: root, stack: []*xmltree.Node{root}}
}

// Current returns the current insertion parent.
func (b *OutputBuilder) Current() *xmltree.Node { return b.stack[len(b.stack)-1] }

// OpenElement appends a new element and makes it the insertion point.
func (b *OutputBuilder) OpenElement(qname string) {
	el := xmltree.NewElement(qname)
	cur := b.Current()
	el.Parent = cur
	cur.Children = append(cur.Children, el)
	b.stack = append(b.stack, el)
}

// CloseElement pops the insertion point.
func (b *OutputBuilder) CloseElement() {
	if len(b.stack) > 1 {
		b.stack = b.stack[:len(b.stack)-1]
	}
}

// Text appends character data, merging with a preceding text node so the
// result tree never contains adjacent text nodes.
func (b *OutputBuilder) Text(data string) {
	if data == "" {
		return
	}
	cur := b.Current()
	if n := len(cur.Children); n > 0 && cur.Children[n-1].Kind == xmltree.TextNode {
		cur.Children[n-1].Data += data
		return
	}
	t := xmltree.NewText(data)
	t.Parent = cur
	cur.Children = append(cur.Children, t)
}

// Attr adds an attribute to the currently open element. Per XSLT 1.0 it is
// an error to add an attribute after children have been written.
func (b *OutputBuilder) Attr(qname, value string) error {
	cur := b.Current()
	if cur.Kind != xmltree.ElementNode {
		return fmt.Errorf("cannot add attribute %q outside an element", qname)
	}
	if len(cur.Children) > 0 {
		return fmt.Errorf("cannot add attribute %q after child content", qname)
	}
	cur.SetAttr(qname, value)
	return nil
}

// Comment appends a comment node.
func (b *OutputBuilder) Comment(data string) {
	c := xmltree.NewComment(data)
	cur := b.Current()
	c.Parent = cur
	cur.Children = append(cur.Children, c)
}

// PI appends a processing-instruction node.
func (b *OutputBuilder) PI(target, data string) {
	p := xmltree.NewProcInst(target, data)
	cur := b.Current()
	p.Parent = cur
	cur.Children = append(cur.Children, p)
}

// CopyNode deep-copies a source node into the output (xsl:copy-of).
func (b *OutputBuilder) CopyNode(n *xmltree.Node) {
	switch n.Kind {
	case xmltree.DocumentNode:
		for _, c := range n.Children {
			b.CopyNode(c)
		}
	case xmltree.AttributeNode:
		_ = b.Attr(n.QName(), n.Data)
	case xmltree.TextNode:
		b.Text(n.Data)
	default:
		cp := n.Clone()
		cur := b.Current()
		cp.Parent = cur
		cur.Children = append(cur.Children, cp)
	}
}

// Finish returns the fragment root and resets the insertion stack.
func (b *OutputBuilder) Finish() *xmltree.Node {
	b.stack = b.stack[:1]
	return b.root
}
