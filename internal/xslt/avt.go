package xslt

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// AVT is a parsed attribute value template: literal text interleaved with
// XPath expressions written inside curly braces. "{{" and "}}" escape
// literal braces.
type AVT struct {
	Parts []AVTPart
	src   string
}

// AVTPart is one segment of an AVT: either literal Text or an Expr.
type AVTPart struct {
	Text string
	Expr xpath.Expr
}

// Source returns the original AVT text.
func (a *AVT) Source() string { return a.src }

// IsLiteral reports whether the AVT contains no expressions.
func (a *AVT) IsLiteral() bool {
	for _, p := range a.Parts {
		if p.Expr != nil {
			return false
		}
	}
	return true
}

// LiteralValue returns the constant value of a literal AVT.
func (a *AVT) LiteralValue() string {
	var sb strings.Builder
	for _, p := range a.Parts {
		sb.WriteString(p.Text)
	}
	return sb.String()
}

// ParseAVT parses an attribute value template.
func ParseAVT(src string) (*AVT, error) {
	avt := &AVT{src: src}
	var lit strings.Builder
	for i := 0; i < len(src); {
		c := src[i]
		switch c {
		case '{':
			if i+1 < len(src) && src[i+1] == '{' {
				lit.WriteByte('{')
				i += 2
				continue
			}
			end := strings.IndexByte(src[i:], '}')
			if end < 0 {
				return nil, fmt.Errorf("xslt: unterminated '{' in attribute value template %q", src)
			}
			exprSrc := src[i+1 : i+end]
			e, err := xpath.Parse(exprSrc)
			if err != nil {
				return nil, fmt.Errorf("xslt: bad expression %q in attribute value template: %w", exprSrc, err)
			}
			if lit.Len() > 0 {
				avt.Parts = append(avt.Parts, AVTPart{Text: lit.String()})
				lit.Reset()
			}
			avt.Parts = append(avt.Parts, AVTPart{Expr: e})
			i += end + 1
		case '}':
			if i+1 < len(src) && src[i+1] == '}' {
				lit.WriteByte('}')
				i += 2
				continue
			}
			return nil, fmt.Errorf("xslt: lone '}' in attribute value template %q", src)
		default:
			lit.WriteByte(c)
			i++
		}
	}
	if lit.Len() > 0 || len(avt.Parts) == 0 {
		avt.Parts = append(avt.Parts, AVTPart{Text: lit.String()})
	}
	return avt, nil
}

// Eval evaluates the AVT in the given XPath context.
func (a *AVT) Eval(ctx *xpath.Context) (string, error) {
	if len(a.Parts) == 1 && a.Parts[0].Expr == nil {
		return a.Parts[0].Text, nil
	}
	var sb strings.Builder
	for _, p := range a.Parts {
		if p.Expr == nil {
			sb.WriteString(p.Text)
			continue
		}
		v, err := xpath.Eval(p.Expr, ctx)
		if err != nil {
			return "", err
		}
		sb.WriteString(xpath.ToString(v))
	}
	return sb.String(), nil
}
