package xmltree

import (
	"strings"
)

// SerializeOptions control how a tree is rendered back to XML text.
type SerializeOptions struct {
	// Indent, when non-empty, pretty-prints the output using the given
	// unit of indentation. Text content suppresses indentation inside its
	// parent element so mixed content round-trips unchanged.
	Indent string
	// OmitDecl suppresses the leading <?xml ...?> declaration that is
	// otherwise emitted for document nodes.
	OmitDecl bool
}

// String serializes the subtree rooted at n with default options
// (no indentation, declaration emitted for documents).
func (n *Node) String() string {
	var sb strings.Builder
	n.Serialize(&sb, SerializeOptions{})
	return sb.String()
}

// Pretty serializes the subtree with two-space indentation and no XML
// declaration; convenient for golden tests and examples.
func (n *Node) Pretty() string {
	var sb strings.Builder
	n.Serialize(&sb, SerializeOptions{Indent: "  ", OmitDecl: true})
	return sb.String()
}

// Serialize writes the subtree rooted at n to sb.
func (n *Node) Serialize(sb *strings.Builder, opts SerializeOptions) {
	s := serializer{sb: sb, opts: opts}
	if n.Kind == DocumentNode && !opts.OmitDecl {
		sb.WriteString(`<?xml version="1.0"?>`)
		if opts.Indent != "" {
			sb.WriteByte('\n')
		}
	}
	s.node(n, 0)
}

type serializer struct {
	sb   *strings.Builder
	opts SerializeOptions
}

func (s *serializer) indent(depth int) {
	if s.opts.Indent == "" {
		return
	}
	if s.sb.Len() > 0 {
		s.sb.WriteByte('\n')
	}
	for i := 0; i < depth; i++ {
		s.sb.WriteString(s.opts.Indent)
	}
}

// hasOnlyElementChildren reports whether pretty-printing may add whitespace
// inside this element without changing its string value.
func hasOnlyElementChildren(n *Node) bool {
	if len(n.Children) == 0 {
		return false
	}
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			return false
		}
	}
	return true
}

func (s *serializer) node(n *Node, depth int) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			s.node(c, depth)
		}
	case ElementNode:
		s.indent(depth)
		s.sb.WriteByte('<')
		s.sb.WriteString(n.QName())
		for _, a := range n.Attrs {
			s.sb.WriteByte(' ')
			s.sb.WriteString(a.QName())
			s.sb.WriteString(`="`)
			s.sb.WriteString(EscapeAttr(a.Data))
			s.sb.WriteByte('"')
		}
		if len(n.Children) == 0 {
			s.sb.WriteString("/>")
			return
		}
		s.sb.WriteByte('>')
		prettyInside := s.opts.Indent != "" && hasOnlyElementChildren(n)
		for _, c := range n.Children {
			if prettyInside {
				s.node(c, depth+1)
			} else {
				sub := serializer{sb: s.sb, opts: SerializeOptions{}}
				sub.node(c, 0)
			}
		}
		if prettyInside {
			s.indent(depth)
		}
		s.sb.WriteString("</")
		s.sb.WriteString(n.QName())
		s.sb.WriteByte('>')
	case TextNode:
		s.sb.WriteString(EscapeText(n.Data))
	case CommentNode:
		s.indent(depth)
		s.sb.WriteString("<!--")
		s.sb.WriteString(n.Data)
		s.sb.WriteString("-->")
	case ProcInstNode:
		s.indent(depth)
		s.sb.WriteString("<?")
		s.sb.WriteString(n.Name)
		if n.Data != "" {
			s.sb.WriteByte(' ')
			s.sb.WriteString(n.Data)
		}
		s.sb.WriteString("?>")
	case AttributeNode:
		s.sb.WriteString(n.QName())
		s.sb.WriteString(`="`)
		s.sb.WriteString(EscapeAttr(n.Data))
		s.sb.WriteByte('"')
	}
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "\n", "&#10;", "\t", "&#9;")

// EscapeText escapes character data for use as element content.
func EscapeText(s string) string { return textEscaper.Replace(s) }

// EscapeAttr escapes character data for use inside a double-quoted
// attribute value.
func EscapeAttr(s string) string { return attrEscaper.Replace(s) }
