package xmltree

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError describes a failure while parsing an XML document, with the
// byte offset and 1-based line of the failure.
type ParseError struct {
	Offset int
	Line   int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xmltree: parse error at line %d (offset %d): %s", e.Line, e.Offset, e.Msg)
}

// Parse parses a complete XML document and returns its document node.
//
// The parser is a non-validating, namespace-aware XML 1.0 subset parser:
// elements, attributes, character data, CDATA sections, comments, processing
// instructions, the XML declaration, the five predefined entities and
// numeric character references. DOCTYPE declarations are skipped without
// being interpreted (no external entities are ever fetched).
func Parse(src string) (*Node, error) {
	p := &parser{src: src, nsStack: []map[string]string{{
		"xml": "http://www.w3.org/XML/1998/namespace",
	}}}
	doc := NewDocument()
	if err := p.parseInto(doc, true); err != nil {
		return nil, err
	}
	if doc.DocumentElement() == nil {
		return nil, p.errAt(0, "document has no root element")
	}
	doc.Renumber()
	return doc, nil
}

// ParseFragment parses a sequence of XML content items (elements, text,
// comments, PIs) that need not be a well-formed single-rooted document. The
// result is a document node whose children are the parsed items.
func ParseFragment(src string) (*Node, error) {
	p := &parser{src: src, allowBareText: true, nsStack: []map[string]string{{
		"xml": "http://www.w3.org/XML/1998/namespace",
	}}}
	doc := NewDocument()
	if err := p.parseInto(doc, true); err != nil {
		return nil, err
	}
	doc.Renumber()
	return doc, nil
}

type parser struct {
	src           string
	pos           int
	allowBareText bool
	nsStack       []map[string]string
}

func (p *parser) errAt(off int, format string, args ...any) error {
	line := 1 + strings.Count(p.src[:off], "\n")
	return &ParseError{Offset: off, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errf(format string, args ...any) error {
	return p.errAt(p.pos, format, args...)
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) hasPrefix(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) lookupNS(prefix string) (string, bool) {
	for i := len(p.nsStack) - 1; i >= 0; i-- {
		if uri, ok := p.nsStack[i][prefix]; ok {
			return uri, true
		}
	}
	return "", false
}

// parseInto parses content items into parent until EOF (topLevel) or until a
// closing tag is seen (the closing tag itself is left for the caller).
func (p *parser) parseInto(parent *Node, topLevel bool) error {
	var textStart = -1
	flushText := func(end int) error {
		if textStart < 0 {
			return nil
		}
		raw := p.src[textStart:end]
		off := textStart
		textStart = -1
		if raw == "" {
			return nil
		}
		text, err := expandEntities(raw)
		if err != nil {
			return p.errAt(off, "%s", err)
		}
		if topLevel && !p.allowBareText {
			if strings.TrimSpace(text) == "" {
				return nil // whitespace between top-level constructs
			}
			return p.errAt(off, "character data outside the root element")
		}
		parent.Children = append(parent.Children, &Node{Kind: TextNode, Data: text, Parent: parent})
		return nil
	}

	for !p.eof() {
		if p.peek() != '<' {
			if textStart < 0 {
				textStart = p.pos
			}
			p.pos++
			continue
		}
		if err := flushText(p.pos); err != nil {
			return err
		}
		switch {
		case p.hasPrefix("<?"):
			if err := p.parsePI(parent); err != nil {
				return err
			}
		case p.hasPrefix("<!--"):
			if err := p.parseComment(parent); err != nil {
				return err
			}
		case p.hasPrefix("<![CDATA["):
			if err := p.parseCDATA(parent); err != nil {
				return err
			}
		case p.hasPrefix("<!DOCTYPE"), p.hasPrefix("<!doctype"):
			if err := p.skipDoctype(); err != nil {
				return err
			}
		case p.hasPrefix("</"):
			if topLevel {
				return p.errf("unexpected closing tag at top level")
			}
			return nil
		default:
			if err := p.parseElement(parent); err != nil {
				return err
			}
		}
	}
	if err := flushText(p.pos); err != nil {
		return err
	}
	if !topLevel {
		return p.errf("unexpected end of input inside element <%s>", parent.QName())
	}
	return nil
}

func (p *parser) parsePI(parent *Node) error {
	start := p.pos
	p.pos += 2 // <?
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return p.errAt(start, "unterminated processing instruction")
	}
	content := p.src[p.pos : p.pos+end]
	p.pos += end + 2
	target := content
	data := ""
	if i := strings.IndexAny(content, " \t\r\n"); i >= 0 {
		target = content[:i]
		data = strings.TrimLeft(content[i:], " \t\r\n")
	}
	if strings.EqualFold(target, "xml") {
		return nil // XML declaration: accepted and ignored
	}
	if !validQName(target) || strings.ContainsRune(target, ':') {
		return p.errAt(start, "invalid processing-instruction target %q", target)
	}
	parent.Children = append(parent.Children, &Node{Kind: ProcInstNode, Name: target, Data: data, Parent: parent})
	return nil
}

func (p *parser) parseComment(parent *Node) error {
	start := p.pos
	p.pos += 4 // <!--
	end := strings.Index(p.src[p.pos:], "-->")
	if end < 0 {
		return p.errAt(start, "unterminated comment")
	}
	data := p.src[p.pos : p.pos+end]
	p.pos += end + 3
	parent.Children = append(parent.Children, &Node{Kind: CommentNode, Data: data, Parent: parent})
	return nil
}

func (p *parser) parseCDATA(parent *Node) error {
	start := p.pos
	p.pos += len("<![CDATA[")
	end := strings.Index(p.src[p.pos:], "]]>")
	if end < 0 {
		return p.errAt(start, "unterminated CDATA section")
	}
	data := p.src[p.pos : p.pos+end]
	p.pos += end + 3
	// Merge with a preceding text node to preserve XPath's text-node model.
	if n := len(parent.Children); n > 0 && parent.Children[n-1].Kind == TextNode {
		parent.Children[n-1].Data += data
		return nil
	}
	parent.Children = append(parent.Children, &Node{Kind: TextNode, Data: data, Parent: parent})
	return nil
}

func (p *parser) skipDoctype() error {
	start := p.pos
	depth := 0
	for !p.eof() {
		switch p.src[p.pos] {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				p.pos++
				return nil
			}
		case '[':
			// Internal subset: skip to matching ].
			end := strings.IndexByte(p.src[p.pos:], ']')
			if end < 0 {
				return p.errAt(start, "unterminated DOCTYPE internal subset")
			}
			p.pos += end
		}
		p.pos++
	}
	return p.errAt(start, "unterminated DOCTYPE")
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' ||
		(r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z') || r > 127
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || (r >= '0' && r <= '9')
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
	if sz == 0 || !isNameStart(r) {
		return "", p.errf("expected a name")
	}
	p.pos += sz
	for !p.eof() {
		r, sz = utf8.DecodeRuneInString(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.pos += sz
	}
	return p.src[start:p.pos], nil
}

// validQName enforces namespace-well-formedness: at most one colon, with
// non-empty parts on both sides.
func validQName(qname string) bool {
	first := strings.IndexByte(qname, ':')
	if first < 0 {
		return qname != ""
	}
	if first == 0 || first == len(qname)-1 {
		return false
	}
	return strings.IndexByte(qname[first+1:], ':') < 0
}

func (p *parser) parseElement(parent *Node) error {
	start := p.pos
	p.pos++ // <
	qname, err := p.parseName()
	if err != nil {
		return err
	}
	if !validQName(qname) {
		return p.errAt(start, "invalid element name %q", qname)
	}
	elem := NewElement(qname)
	elem.Parent = parent

	ns := map[string]string{}
	p.nsStack = append(p.nsStack, ns)
	defer func() { p.nsStack = p.nsStack[:len(p.nsStack)-1] }()

	// Attributes.
	for {
		p.skipSpace()
		if p.eof() {
			return p.errAt(start, "unterminated start tag <%s>", qname)
		}
		c := p.peek()
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.parseName()
		if err != nil {
			return err
		}
		if !validQName(aname) {
			return p.errf("invalid attribute name %q", aname)
		}
		p.skipSpace()
		if p.peek() != '=' {
			return p.errf("expected '=' after attribute name %q", aname)
		}
		p.pos++
		p.skipSpace()
		quote := p.peek()
		if quote != '"' && quote != '\'' {
			return p.errf("expected quoted attribute value for %q", aname)
		}
		p.pos++
		vstart := p.pos
		end := strings.IndexByte(p.src[p.pos:], quote)
		if end < 0 {
			return p.errAt(vstart, "unterminated attribute value for %q", aname)
		}
		raw := p.src[p.pos : p.pos+end]
		p.pos += end + 1
		val, err := expandEntities(raw)
		if err != nil {
			return p.errAt(vstart, "%s", err)
		}
		attr := NewAttr(aname, val)
		attr.Parent = elem
		for _, a := range elem.Attrs {
			if a.Name == attr.Name && a.Prefix == attr.Prefix {
				return p.errf("duplicate attribute %q on <%s>", aname, qname)
			}
		}
		elem.Attrs = append(elem.Attrs, attr)
		// Record namespace declarations.
		if attr.Prefix == "" && attr.Name == "xmlns" {
			ns[""] = val
		} else if attr.Prefix == "xmlns" {
			ns[attr.Name] = val
		}
	}

	// Resolve namespaces for the element and its attributes.
	if uri, ok := p.lookupNS(elem.Prefix); ok {
		elem.NamespaceURI = uri
	} else if elem.Prefix != "" {
		return p.errAt(start, "undeclared namespace prefix %q", elem.Prefix)
	}
	for _, a := range elem.Attrs {
		if a.Prefix != "" && a.Prefix != "xmlns" {
			if uri, ok := p.lookupNS(a.Prefix); ok {
				a.NamespaceURI = uri
			} else {
				return p.errAt(start, "undeclared namespace prefix %q", a.Prefix)
			}
		}
	}

	selfClosing := false
	if p.peek() == '/' {
		selfClosing = true
		p.pos++
	}
	if p.peek() != '>' {
		return p.errf("expected '>' to close tag <%s>", qname)
	}
	p.pos++

	parent.Children = append(parent.Children, elem)

	if selfClosing {
		return nil
	}
	if err := p.parseInto(elem, false); err != nil {
		return err
	}
	// Closing tag.
	if !p.hasPrefix("</") {
		return p.errf("expected closing tag for <%s>", qname)
	}
	p.pos += 2
	cname, err := p.parseName()
	if err != nil {
		return err
	}
	if cname != qname {
		return p.errf("mismatched closing tag </%s>, expected </%s>", cname, qname)
	}
	p.skipSpace()
	if p.peek() != '>' {
		return p.errf("expected '>' in closing tag </%s>", cname)
	}
	p.pos++
	return nil
}

// expandEntities replaces the predefined entities and numeric character
// references in raw text.
func expandEntities(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			return "", fmt.Errorf("unterminated entity reference")
		}
		ent := s[i+1 : i+end]
		i += end + 1
		switch {
		case ent == "lt":
			sb.WriteByte('<')
		case ent == "gt":
			sb.WriteByte('>')
		case ent == "amp":
			sb.WriteByte('&')
		case ent == "apos":
			sb.WriteByte('\'')
		case ent == "quot":
			sb.WriteByte('"')
		case strings.HasPrefix(ent, "#x"), strings.HasPrefix(ent, "#X"):
			v, err := strconv.ParseInt(ent[2:], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			sb.WriteRune(rune(v))
		case strings.HasPrefix(ent, "#"):
			v, err := strconv.ParseInt(ent[1:], 10, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			sb.WriteRune(rune(v))
		default:
			return "", fmt.Errorf("unknown entity &%s;", ent)
		}
	}
	return sb.String(), nil
}
