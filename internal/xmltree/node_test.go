package xmltree

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return doc
}

func TestQName(t *testing.T) {
	e := NewElement("xsl:template")
	if e.Prefix != "xsl" || e.Name != "template" {
		t.Fatalf("got prefix=%q name=%q", e.Prefix, e.Name)
	}
	if e.QName() != "xsl:template" {
		t.Fatalf("QName = %q", e.QName())
	}
	if NewElement("dept").QName() != "dept" {
		t.Fatal("unprefixed QName wrong")
	}
}

func TestAppendChildAndStringValue(t *testing.T) {
	root := NewElement("dept")
	name := NewElement("dname")
	name.AppendChild(NewText("ACCOUNTING"))
	root.AppendChild(name)
	loc := NewElement("loc")
	loc.AppendChild(NewText("NEW YORK"))
	root.AppendChild(loc)

	if got := root.StringValue(); got != "ACCOUNTINGNEW YORK" {
		t.Fatalf("StringValue = %q", got)
	}
	if name.Parent != root {
		t.Fatal("parent link not set")
	}
}

func TestAppendChildCopiesAttachedNodes(t *testing.T) {
	a := NewElement("a")
	child := NewElement("c")
	a.AppendChild(child)
	b := NewElement("b")
	b.AppendChild(child) // child already attached: must be cloned
	if a.Children[0] == b.Children[0] {
		t.Fatal("attached node was moved, not copied")
	}
	if len(a.Children) != 1 {
		t.Fatal("source tree mutated")
	}
}

func TestAppendDocumentSplices(t *testing.T) {
	doc := NewDocument()
	doc.AppendChild(NewElement("x"))
	doc.AppendChild(NewComment("c"))
	target := NewElement("wrap")
	target.AppendChild(doc)
	if len(target.Children) != 2 {
		t.Fatalf("expected spliced children, got %d", len(target.Children))
	}
	if target.Children[0].Kind != ElementNode || target.Children[1].Kind != CommentNode {
		t.Fatal("spliced children wrong kinds")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	e := NewElement("td")
	e.SetAttr("border", "1")
	e.SetAttr("border", "2")
	if len(e.Attrs) != 1 {
		t.Fatalf("expected 1 attr, got %d", len(e.Attrs))
	}
	if v, _ := e.Attr("border"); v != "2" {
		t.Fatalf("attr = %q", v)
	}
	if _, ok := e.Attr("missing"); ok {
		t.Fatal("missing attribute reported present")
	}
}

func TestCloneIsDeep(t *testing.T) {
	doc := mustParse(t, `<a x="1"><b>hello</b></a>`)
	orig := doc.DocumentElement()
	cp := orig.Clone()
	cp.Children[0].Children[0].Data = "changed"
	cp.Attrs[0].Data = "9"
	if orig.StringValue() != "hello" {
		t.Fatal("clone shares text storage")
	}
	if v, _ := orig.Attr("x"); v != "1" {
		t.Fatal("clone shares attr storage")
	}
	if cp.Parent != nil {
		t.Fatal("clone should be detached")
	}
}

func TestDocumentOrderCompare(t *testing.T) {
	doc := mustParse(t, `<r><a><a1/></a><b y="2"/><c/></r>`)
	r := doc.DocumentElement()
	a := r.Children[0]
	a1 := a.Children[0]
	b := r.Children[1]
	c := r.Children[2]

	cases := []struct {
		x, y *Node
		want int
	}{
		{a, b, -1}, {b, a, 1}, {a, a, 0},
		{a, a1, -1},  // ancestor before descendant
		{a1, b, -1},  // descendant of earlier sibling before later sibling
		{doc, c, -1}, // root before everything
	}
	for i, tc := range cases {
		if got := CompareOrder(tc.x, tc.y); got != tc.want {
			t.Errorf("case %d: CompareOrder = %d, want %d", i, got, tc.want)
		}
	}
	// Attribute sorts after its element but before the element's children.
	attr := b.Attrs[0]
	if CompareOrder(b, attr) != -1 || CompareOrder(attr, c) != -1 {
		t.Fatal("attribute ordering wrong")
	}
}

func TestSortDocOrderDedups(t *testing.T) {
	doc := mustParse(t, `<r><a/><b/><c/></r>`)
	r := doc.DocumentElement()
	a, b, c := r.Children[0], r.Children[1], r.Children[2]
	got := SortDocOrder([]*Node{c, a, b, a, c})
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("SortDocOrder wrong: %v", got)
	}
}

func TestElementsByName(t *testing.T) {
	doc := mustParse(t, `<depts><dept><emp/><emp/></dept><dept><emp/></dept></depts>`)
	if got := len(doc.ElementsByName("emp")); got != 3 {
		t.Fatalf("found %d emp elements, want 3", got)
	}
	if got := len(doc.ElementsByName("dept")); got != 2 {
		t.Fatalf("found %d dept elements, want 2", got)
	}
}

func TestChildElementHelpers(t *testing.T) {
	doc := mustParse(t, `<dept><dname>X</dname><loc>Y</loc><loc>Z</loc></dept>`)
	d := doc.DocumentElement()
	if d.FirstChildElement("loc").StringValue() != "Y" {
		t.Fatal("FirstChildElement wrong")
	}
	if d.FirstChildElement("nope") != nil {
		t.Fatal("FirstChildElement should return nil for absent name")
	}
	if len(d.ChildElements("loc")) != 2 || len(d.ChildElements("")) != 3 {
		t.Fatal("ChildElements counts wrong")
	}
}

func TestRenumberAssignsMonotonicOrder(t *testing.T) {
	// Build a tree out of order, then renumber.
	r := NewElement("r")
	c2 := NewElement("c2")
	c1 := NewElement("c1")
	r.Children = append(r.Children, c1, c2)
	c1.Parent, c2.Parent = r, r
	r.Renumber()
	if !(r.Ord() < c1.Ord() && c1.Ord() < c2.Ord()) {
		t.Fatalf("ords not monotonic: %d %d %d", r.Ord(), c1.Ord(), c2.Ord())
	}
}

func TestStringValueKinds(t *testing.T) {
	doc := mustParse(t, `<r a="av"><!--cm--><?pi pd?>t1<e>t2</e></r>`)
	r := doc.DocumentElement()
	if r.StringValue() != "t1t2" {
		t.Fatalf("element string value = %q", r.StringValue())
	}
	if doc.StringValue() != "t1t2" {
		t.Fatalf("document string value = %q", doc.StringValue())
	}
	if r.Attrs[0].StringValue() != "av" {
		t.Fatal("attribute string value wrong")
	}
	var comment, pi *Node
	for _, c := range r.Children {
		switch c.Kind {
		case CommentNode:
			comment = c
		case ProcInstNode:
			pi = c
		}
	}
	if comment.StringValue() != "cm" || pi.StringValue() != "pd" {
		t.Fatal("comment/PI string values wrong")
	}
}

func TestRootAndDocument(t *testing.T) {
	doc := mustParse(t, `<a><b/></a>`)
	b := doc.DocumentElement().Children[0]
	if b.Root() != doc || b.Document() != doc {
		t.Fatal("Root/Document wrong for attached node")
	}
	free := NewElement("free")
	if free.Document() != nil {
		t.Fatal("detached fragment should have nil Document")
	}
	if free.Root() != free {
		t.Fatal("detached root should be itself")
	}
}

func TestEscaping(t *testing.T) {
	if EscapeText(`a<b>&c`) != "a&lt;b&gt;&amp;c" {
		t.Fatal("EscapeText wrong")
	}
	if !strings.Contains(EscapeAttr(`say "hi"`), "&quot;") {
		t.Fatal("EscapeAttr must escape quotes")
	}
}
