package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleDocument(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc></dept>`)
	root := doc.DocumentElement()
	if root.Name != "dept" {
		t.Fatalf("root = %q", root.Name)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d", len(root.Children))
	}
	if root.Children[0].StringValue() != "ACCOUNTING" {
		t.Fatal("dname text wrong")
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<table border="2" width='90%'><td/></table>`)
	e := doc.DocumentElement()
	if v, _ := e.Attr("border"); v != "2" {
		t.Fatalf("border=%q", v)
	}
	if v, _ := e.Attr("width"); v != "90%" {
		t.Fatalf("width=%q", v)
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<p a="&lt;&quot;&amp;">x &gt; y &amp; z &#65;&#x42;</p>`)
	e := doc.DocumentElement()
	if v, _ := e.Attr("a"); v != `<"&` {
		t.Fatalf("attr entities: %q", v)
	}
	if got := e.StringValue(); got != "x > y & z AB" {
		t.Fatalf("text entities: %q", got)
	}
}

func TestParseCDATAMergesWithText(t *testing.T) {
	doc := mustParse(t, `<p>ab<![CDATA[<raw> & stuff]]>cd</p>`)
	e := doc.DocumentElement()
	if len(e.Children) != 2 {
		t.Fatalf("children = %d (CDATA should merge into preceding text)", len(e.Children))
	}
	if e.StringValue() != "ab<raw> & stuffcd" {
		t.Fatalf("string value = %q", e.StringValue())
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	doc := mustParse(t, `<!-- top --><r><!-- in --><?target some data?></r>`)
	if len(doc.Children) != 2 {
		t.Fatalf("doc children = %d", len(doc.Children))
	}
	r := doc.DocumentElement()
	if r.Children[0].Kind != CommentNode || r.Children[0].Data != " in " {
		t.Fatal("comment wrong")
	}
	pi := r.Children[1]
	if pi.Kind != ProcInstNode || pi.Name != "target" || pi.Data != "some data" {
		t.Fatalf("PI wrong: %+v", pi)
	}
}

func TestParseNamespaces(t *testing.T) {
	doc := mustParse(t, `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
		<xsl:template match="dept"><H1>x</H1></xsl:template>
	</xsl:stylesheet>`)
	ss := doc.DocumentElement()
	if ss.NamespaceURI != "http://www.w3.org/1999/XSL/Transform" {
		t.Fatalf("ns = %q", ss.NamespaceURI)
	}
	tmpl := ss.FirstChildElement("template")
	if tmpl == nil || tmpl.NamespaceURI != ss.NamespaceURI {
		t.Fatal("template namespace not inherited from declaration")
	}
	h1 := tmpl.FirstChildElement("H1")
	if h1.NamespaceURI != "" {
		t.Fatalf("H1 should have no namespace, got %q", h1.NamespaceURI)
	}
}

func TestParseDefaultNamespace(t *testing.T) {
	doc := mustParse(t, `<a xmlns="urn:x"><b/><c xmlns=""><d/></c></a>`)
	a := doc.DocumentElement()
	if a.NamespaceURI != "urn:x" || a.FirstChildElement("b").NamespaceURI != "urn:x" {
		t.Fatal("default namespace not applied")
	}
	c := a.FirstChildElement("c")
	if c.NamespaceURI != "" || c.FirstChildElement("d").NamespaceURI != "" {
		t.Fatal("default namespace undeclaration not honored")
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := mustParse(t, `<r><empty/><e a="1"/></r>`)
	r := doc.DocumentElement()
	if len(r.Children) != 2 || len(r.Children[0].Children) != 0 {
		t.Fatal("self-closing parse wrong")
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE html [ <!ENTITY x "y"> ]><html><body/></html>`)
	if doc.DocumentElement().Name != "html" {
		t.Fatal("doctype not skipped")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a>`,
		`<a></b>`,
		`<a x=1/>`,
		`<a x="1" x="2"/>`,
		`<a><b></a></b>`,
		`text only`,
		`<a/>trailing`,
		`<a>&undefined;</a>`,
		`<a>&#xZZ;</a>`,
		`<pfx:a/>`,
		`<a><!-- unterminated </a>`,
		`<a><![CDATA[ unterminated </a>`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("<a>\n<b>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line < 2 {
		t.Fatalf("line = %d, want >= 2", pe.Line)
	}
}

func TestParseFragment(t *testing.T) {
	frag, err := ParseFragment(`text <a/> more <b>x</b>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(frag.Children) != 4 {
		t.Fatalf("fragment children = %d", len(frag.Children))
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc></dept>`,
		`<table border="2"><td><b>EmpNo</b></td></table>`,
		`<r>a&amp;b&lt;c</r>`,
		`<r><!--comment--><?pi data?><e/></r>`,
		`<x:r xmlns:x="urn:q"><x:c a="v"/></x:r>`,
	}
	for _, src := range srcs {
		doc := mustParse(t, src)
		out := doc.String()
		out = strings.TrimPrefix(out, `<?xml version="1.0"?>`)
		doc2 := mustParse(t, out)
		if doc2.String() != doc.String() {
			t.Errorf("round trip diverged:\n src: %s\n out: %s\n re:  %s", src, out, doc2.String())
		}
	}
}

// TestQuickTextRoundTrip property: any text content survives
// escape→parse→string-value unchanged.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Strip control chars that XML cannot represent.
		clean := strings.Map(func(r rune) rune {
			if r == 0x9 || r == 0xA || r == 0xD || (r >= 0x20 && r != 0xFFFE && r != 0xFFFF && (r < 0xD800 || r > 0xDFFF)) {
				return r
			}
			return -1
		}, s)
		// Normalize \r which XML parsers fold into \n per spec; ours keeps
		// raw bytes, so just avoid it in the property.
		clean = strings.ReplaceAll(clean, "\r", "")
		doc, err := Parse("<t>" + EscapeText(clean) + "</t>")
		if err != nil {
			return false
		}
		return doc.DocumentElement().StringValue() == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAttrRoundTrip property: attribute values survive
// escape→parse→value unchanged.
func TestQuickAttrRoundTrip(t *testing.T) {
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == 0x9 || r == 0xA || (r >= 0x20 && r != 0xFFFE && r != 0xFFFF && (r < 0xD800 || r > 0xDFFF)) {
				return r
			}
			return -1
		}, s)
		doc, err := Parse(`<t a="` + EscapeAttr(clean) + `"/>`)
		if err != nil {
			return false
		}
		v, _ := doc.DocumentElement().Attr("a")
		return v == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrettySerialization(t *testing.T) {
	doc := mustParse(t, `<dept><dname>A</dname><employees><emp><empno>1</empno></emp></employees></dept>`)
	got := doc.Pretty()
	if !strings.Contains(got, "\n  <dname>A</dname>") {
		t.Fatalf("pretty output missing indentation:\n%s", got)
	}
	// Pretty output adds inter-element whitespace but must not disturb the
	// text content of text-bearing elements.
	re := mustParse(t, got)
	strip := func(s string) string {
		return strings.Join(strings.Fields(s), "")
	}
	if strip(re.DocumentElement().StringValue()) != strip(doc.DocumentElement().StringValue()) {
		t.Fatal("pretty print changed text content")
	}
	if re.DocumentElement().ElementsByName("dname")[0].StringValue() != "A" {
		t.Fatal("pretty print injected whitespace into a text element")
	}
}

// TestQuickParserNeverPanics mutates valid documents randomly; Parse must
// return cleanly (error or document) without panicking.
func TestQuickParserNeverPanics(t *testing.T) {
	base := []string{
		`<dept><dname>ACCOUNTING</dname><employees><emp sal="2450"/></employees></dept>`,
		`<?xml version="1.0"?><a x="1"><!--c--><![CDATA[raw]]><b>&amp;</b></a>`,
		`<x:r xmlns:x="urn:q"><x:c/></x:r>`,
	}
	junk := []byte(`<>&"'/!?=[]-x0;`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := []byte(base[rng.Intn(len(base))])
		for i := 0; i < 1+rng.Intn(6); i++ {
			switch rng.Intn(3) {
			case 0: // mutate
				src[rng.Intn(len(src))] = junk[rng.Intn(len(junk))]
			case 1: // delete
				p := rng.Intn(len(src))
				src = append(src[:p], src[p+1:]...)
			case 2: // insert
				p := rng.Intn(len(src) + 1)
				src = append(src[:p], append([]byte{junk[rng.Intn(len(junk))]}, src[p:]...)...)
			}
			if len(src) == 0 {
				break
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("seed %d: Parse panicked on %q: %v", seed, src, r)
			}
		}()
		doc, err := Parse(string(src))
		if err == nil && doc != nil {
			// A successful parse must serialize and re-parse.
			if _, err2 := Parse(strings.TrimPrefix(doc.String(), `<?xml version="1.0"?>`)); err2 != nil {
				t.Errorf("seed %d: round trip of mutated doc failed: %v", seed, err2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	bad := []string{
		`<:/>`,
		`<:x/>`,
		`<x:/>`,
		`<a:b:c/>`,
		`<e :a="1"/>`,
		`<e a:="1"/>`,
		`<r><?: data?></r>`,
		`<r><?a:b data?></r>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should reject invalid name", src)
		}
	}
}
