// Package xmltree implements the XML data model used throughout the
// repository: a mutable DOM-like tree with parent links, document order,
// namespace-aware names, a hand-written parser and a serializer.
//
// The standard library encoding/xml package is deliberately not used for the
// tree: XPath evaluation needs parent pointers, stable document order,
// attribute nodes that participate in axes, and cheap structural sharing,
// none of which encoding/xml's token model provides directly.
package xmltree

import (
	"sort"
	"strings"
)

// NodeKind identifies the kind of a Node. The set mirrors the XPath 1.0 data
// model (root, element, attribute, text, comment, processing instruction).
type NodeKind uint8

// Node kinds.
const (
	DocumentNode NodeKind = iota // the root of a tree (XPath "root node")
	ElementNode
	AttributeNode
	TextNode
	CommentNode
	ProcInstNode
)

// String returns the conventional name of the node kind.
func (k NodeKind) String() string {
	switch k {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case AttributeNode:
		return "attribute"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcInstNode:
		return "processing-instruction"
	}
	return "unknown"
}

// Node is a single node in an XML tree. All node kinds share this struct;
// fields that do not apply to a kind are left at their zero values.
//
// Document order is tracked with the ord field, assigned monotonically when
// nodes are attached to a document. Nodes constructed detached get an order
// assigned when first attached (or when Renumber is called on the root).
type Node struct {
	Kind NodeKind

	// Name is the local name for elements and attributes, and the target
	// for processing instructions. Empty for document, text and comment
	// nodes.
	Name string
	// Prefix is the namespace prefix as written in the source ("xsl" in
	// <xsl:template>). The empty string means no prefix.
	Prefix string
	// NamespaceURI is the resolved namespace URI, when the parser (or the
	// caller) resolved one.
	NamespaceURI string

	// Data holds the text of text/comment nodes, the value of attribute
	// nodes, and the content of processing instructions.
	Data string

	Parent   *Node
	Children []*Node
	// Attrs holds attribute nodes (Kind == AttributeNode). Namespace
	// declarations (xmlns, xmlns:*) are kept here too so round-tripping
	// preserves them; XPath's attribute axis skips them.
	Attrs []*Node

	ord int
}

// QName returns the qualified name as written in the source document:
// "prefix:local" or just "local" when there is no prefix.
func (n *Node) QName() string {
	if n.Prefix != "" {
		return n.Prefix + ":" + n.Name
	}
	return n.Name
}

// Root returns the topmost ancestor of n (the document node for attached
// trees, or the highest parentless node for detached fragments).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Document returns the owning document node, or nil when the node belongs to
// a detached fragment whose root is not a DocumentNode.
func (n *Node) Document() *Node {
	r := n.Root()
	if r.Kind == DocumentNode {
		return r
	}
	return nil
}

// DocumentElement returns the first element child of a document node,
// or nil. For convenience it may be called on any node; it operates on the
// node's root.
func (n *Node) DocumentElement() *Node {
	r := n.Root()
	for _, c := range r.Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}

// NewDocument returns a fresh empty document node.
func NewDocument() *Node {
	return &Node{Kind: DocumentNode}
}

// NewElement returns a detached element node with the given qualified name
// ("pfx:local" or "local").
func NewElement(qname string) *Node {
	pfx, local := splitQName(qname)
	return &Node{Kind: ElementNode, Prefix: pfx, Name: local}
}

// NewText returns a detached text node with the given character data.
func NewText(data string) *Node {
	return &Node{Kind: TextNode, Data: data}
}

// NewComment returns a detached comment node.
func NewComment(data string) *Node {
	return &Node{Kind: CommentNode, Data: data}
}

// NewProcInst returns a detached processing-instruction node.
func NewProcInst(target, data string) *Node {
	return &Node{Kind: ProcInstNode, Name: target, Data: data}
}

// NewAttr returns a detached attribute node.
func NewAttr(qname, value string) *Node {
	pfx, local := splitQName(qname)
	return &Node{Kind: AttributeNode, Prefix: pfx, Name: local, Data: value}
}

func splitQName(qname string) (prefix, local string) {
	if i := strings.IndexByte(qname, ':'); i >= 0 {
		return qname[:i], qname[i+1:]
	}
	return "", qname
}

// AppendChild attaches c as the last child of n and assigns document order.
// Appending a DocumentNode splices its children instead (document nodes can
// never be children). Appending a node that already has a parent detaches a
// shallow copy rather than moving it, keeping the source tree intact.
func (n *Node) AppendChild(c *Node) {
	if c == nil {
		return
	}
	if c.Kind == DocumentNode {
		for _, gc := range c.Children {
			n.AppendChild(gc)
		}
		return
	}
	if c.Kind == AttributeNode {
		n.SetAttrNode(c)
		return
	}
	if c.Parent != nil {
		c = c.Clone()
	}
	c.Parent = n
	n.Children = append(n.Children, c)
}

// SetAttrNode attaches an attribute node to element n, replacing any
// existing attribute with the same qualified name.
func (n *Node) SetAttrNode(a *Node) {
	if a.Parent != nil {
		a = a.Clone()
	}
	a.Parent = n
	for i, old := range n.Attrs {
		if old.Name == a.Name && old.Prefix == a.Prefix {
			n.Attrs[i] = a
			return
		}
	}
	n.Attrs = append(n.Attrs, a)
}

// SetAttr sets (or replaces) attribute qname to value on element n.
func (n *Node) SetAttr(qname, value string) {
	n.SetAttrNode(NewAttr(qname, value))
}

// Attr returns the value of the named attribute and whether it was present.
// The name is matched against the qualified name as written.
func (n *Node) Attr(qname string) (string, bool) {
	pfx, local := splitQName(qname)
	for _, a := range n.Attrs {
		if a.Name == local && a.Prefix == pfx {
			return a.Data, true
		}
	}
	return "", false
}

// AttrValue returns the value of the named attribute, or "" when absent.
func (n *Node) AttrValue(qname string) string {
	v, _ := n.Attr(qname)
	return v
}

// StringValue returns the XPath string-value of the node: the concatenation
// of all descendant text for documents and elements; the stored data for
// attributes, text, comments and processing instructions.
func (n *Node) StringValue() string {
	switch n.Kind {
	case AttributeNode, TextNode, CommentNode, ProcInstNode:
		return n.Data
	}
	var sb strings.Builder
	n.appendText(&sb)
	return sb.String()
}

func (n *Node) appendText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			sb.WriteString(c.Data)
		case ElementNode:
			c.appendText(sb)
		}
	}
}

// Clone returns a deep copy of the node (and its subtree) with no parent.
func (n *Node) Clone() *Node {
	cp := &Node{
		Kind:         n.Kind,
		Name:         n.Name,
		Prefix:       n.Prefix,
		NamespaceURI: n.NamespaceURI,
		Data:         n.Data,
	}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]*Node, len(n.Attrs))
		for i, a := range n.Attrs {
			ac := a.Clone()
			ac.Parent = cp
			cp.Attrs[i] = ac
		}
	}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cc := c.Clone()
			cc.Parent = cp
			cp.Children[i] = cc
		}
	}
	return cp
}

// Renumber assigns fresh document-order indexes across the whole tree rooted
// at n's root. It must be called before order-sensitive operations on trees
// assembled out of order; the parser and the builders in this repository
// always produce trees in document order, so most callers never need it.
func (n *Node) Renumber() {
	ctr := 1 // 0 is reserved for "unassigned"
	var walk func(x *Node)
	walk = func(x *Node) {
		x.ord = ctr
		ctr++
		for _, a := range x.Attrs {
			a.ord = ctr
			ctr++
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n.Root())
}

// Ord reports the node's document-order index (valid after parsing or after
// Renumber).
func (n *Node) Ord() int { return n.ord }

// CompareOrder reports -1, 0 or +1 as a precedes, equals, or follows b in
// document order. Nodes from different trees compare by pointer identity of
// their roots (stable but arbitrary), matching XPath's implementation-defined
// cross-document ordering.
//
// Fast path: when both nodes carry distinct Renumber-assigned indexes
// (ord > 0), the comparison is O(1). Every tree in this repository is
// renumbered after its last mutation (parsers, output builders and
// constructors all do), so the structural fallback only runs for freshly
// assembled fragments.
func CompareOrder(a, b *Node) int {
	if a == b {
		return 0
	}
	ra, rb := a.Root(), b.Root()
	if ra != rb {
		// Arbitrary but stable cross-tree ordering.
		if ra.ord != rb.ord {
			if ra.ord < rb.ord {
				return -1
			}
			return 1
		}
		return -1
	}
	if a.ord > 0 && b.ord > 0 && a.ord != b.ord {
		if a.ord < b.ord {
			return -1
		}
		return 1
	}
	// Same tree without usable indexes: compare by path from root.
	pa := pathTo(a)
	pb := pathTo(b)
	for i := 0; i < len(pa) && i < len(pb); i++ {
		if pa[i] != pb[i] {
			if pa[i] < pb[i] {
				return -1
			}
			return 1
		}
	}
	if len(pa) < len(pb) {
		return -1 // ancestor precedes descendant
	}
	if len(pa) > len(pb) {
		return 1
	}
	return 0
}

// pathTo returns the child-index path from the root to n. Attributes sort
// just after their owner element and before its children, in attribute-list
// order, encoded as a large negative offset step.
func pathTo(n *Node) []int {
	var rev []int
	for n.Parent != nil {
		p := n.Parent
		idx := -1
		if n.Kind == AttributeNode {
			for i, a := range p.Attrs {
				if a == n {
					idx = -len(p.Attrs) + i // attributes precede children
					break
				}
			}
		} else {
			for i, c := range p.Children {
				if c == n {
					idx = i
					break
				}
			}
		}
		rev = append(rev, idx)
		n = p
	}
	// reverse
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// SortDocOrder sorts nodes into document order in place and removes
// duplicates, returning the (possibly shorter) slice.
func SortDocOrder(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		return CompareOrder(nodes[i], nodes[j]) < 0
	})
	out := nodes[:1]
	for _, n := range nodes[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// ElementsByName returns all descendant elements (in document order) whose
// local name equals name.
func (n *Node) ElementsByName(name string) []*Node {
	var out []*Node
	var walk func(x *Node)
	walk = func(x *Node) {
		for _, c := range x.Children {
			if c.Kind == ElementNode {
				if c.Name == name {
					out = append(out, c)
				}
				walk(c)
			}
		}
	}
	walk(n)
	return out
}

// FirstChildElement returns the first element child with the given local
// name, or nil.
func (n *Node) FirstChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// ChildElements returns element children; when name is non-empty only those
// with a matching local name.
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}
