package xschema

import (
	"strings"
	"testing"
)

// deptSchema mirrors the relational view of paper Example 1.
const deptSchema = `
# paper example 1: dept_emp view shape
dept      := dname, loc, employees
employees := emp*
emp       := empno:int, ename, sal:int
`

func TestParseCompactSequence(t *testing.T) {
	s, err := ParseCompact(deptSchema)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root.Name != "dept" {
		t.Fatalf("root = %q", s.Root.Name)
	}
	dept := s.Lookup("dept")
	if dept.Group != GroupSeq || len(dept.Children) != 3 {
		t.Fatalf("dept group=%v children=%d", dept.Group, len(dept.Children))
	}
	if dept.Children[0].Child.Name != "dname" || dept.Children[2].Child.Name != "employees" {
		t.Fatal("sequence order wrong")
	}
	emp := s.Lookup("employees").Particle("emp")
	if emp == nil || !emp.Repeating() || !emp.Optional() {
		t.Fatal("emp* cardinality wrong")
	}
	if s.Lookup("sal").Type != TypeInt || !s.Lookup("sal").IsLeaf() {
		t.Fatal("sal should be an int leaf")
	}
	if s.Lookup("ename").Type != TypeString {
		t.Fatal("ename should default to string")
	}
}

func TestParseCompactChoiceAndAll(t *testing.T) {
	s := MustParseCompact(`
doc     := payload
payload := xml | json | csv
`)
	p := s.Lookup("payload")
	if p.Group != GroupChoice || len(p.Children) != 3 {
		t.Fatalf("choice wrong: %v/%d", p.Group, len(p.Children))
	}
	s2 := MustParseCompact(`
bundle := meta & data
`)
	if s2.Lookup("bundle").Group != GroupAll {
		t.Fatal("all group wrong")
	}
}

func TestParseCompactCardinalities(t *testing.T) {
	s := MustParseCompact(`r := a?, b*, c+, d`)
	r := s.Lookup("r")
	cases := []struct {
		name string
		card string
	}{{"a", "?"}, {"b", "*"}, {"c", "+"}, {"d", ""}}
	for _, tc := range cases {
		p := r.Particle(tc.name)
		if p == nil || p.Card() != tc.card {
			t.Errorf("particle %s: card %q, want %q", tc.name, p.Card(), tc.card)
		}
	}
}

func TestParseCompactAttributes(t *testing.T) {
	s := MustParseCompact(`emp := @id:int, @note?, empno:int`)
	emp := s.Lookup("emp")
	if len(emp.Attrs) != 2 {
		t.Fatalf("attrs = %d", len(emp.Attrs))
	}
	if emp.Attr("id").Type != TypeInt || emp.Attr("id").Optional {
		t.Fatal("@id wrong")
	}
	if emp.Attr("note") == nil || !emp.Attr("note").Optional {
		t.Fatal("@note wrong")
	}
	if emp.Attr("missing") != nil {
		t.Fatal("missing attr should be nil")
	}
}

func TestParseCompactTextAndEmpty(t *testing.T) {
	s := MustParseCompact(`
r     := note, count, marker
note  := #text
count := #int
marker := #empty
`)
	if s.Lookup("note").Group != GroupText || s.Lookup("note").Type != TypeString {
		t.Fatal("#text wrong")
	}
	if s.Lookup("count").Type != TypeInt {
		t.Fatal("#int wrong")
	}
	if s.Lookup("marker").Group != GroupEmpty {
		t.Fatal("#empty wrong")
	}
}

func TestParseCompactErrors(t *testing.T) {
	bad := []string{
		``,
		`r`,
		`r := `,
		`r := a | b & c`,
		`r := a,,b`,
		`1bad := x`,
		"r := a\nr := b",
		`r := a:unknowntype`,
		`r := @bad name`,
	}
	for _, src := range bad {
		if _, err := ParseCompact(src); err == nil {
			t.Errorf("ParseCompact(%q) should fail", src)
		}
	}
	// Typing a non-leaf is an error.
	if _, err := ParseCompact("r := a:int\na := b"); err == nil {
		t.Error("typing a non-leaf should fail")
	}
}

func TestRecursionDetection(t *testing.T) {
	s := MustParseCompact(deptSchema)
	if s.IsRecursive() {
		t.Fatal("dept schema is not recursive")
	}
	rec := MustParseCompact(`
section := title, section*
title   := #text
`)
	if !rec.IsRecursive() {
		t.Fatal("section schema is recursive")
	}
	got := rec.RecursiveElements()
	if len(got) != 1 || got[0] != "section" {
		t.Fatalf("recursive elements = %v", got)
	}
	// Mutual recursion.
	mut := MustParseCompact(`
a := b?
b := a?
`)
	if els := mut.RecursiveElements(); len(els) != 2 {
		t.Fatalf("mutual recursion: %v", els)
	}
}

func TestGenerateSampleSequence(t *testing.T) {
	s := MustParseCompact(deptSchema)
	doc, err := s.GenerateSample(SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root := doc.DocumentElement()
	if root.Name != "dept" || len(root.ChildElements("")) != 3 {
		t.Fatalf("sample root wrong: %s", doc.String())
	}
	emps := doc.ElementsByName("emp")
	if len(emps) != 2 {
		t.Fatalf("repeating particle should appear twice (sibling axes), got %d", len(emps))
	}
	info := ReadSampleInfo(emps[0])
	if !info.Unbounded || !info.Optional {
		t.Fatalf("emp sample info wrong: %+v", info)
	}
	sal := doc.ElementsByName("sal")[0]
	if ReadSampleInfo(sal).Type != TypeInt {
		t.Fatal("sal type annotation missing")
	}
	if sal.StringValue() != "0" {
		t.Fatalf("int leaf placeholder = %q", sal.StringValue())
	}
}

func TestGenerateSampleChoice(t *testing.T) {
	s := MustParseCompact(`
doc     := payload
payload := xml | json
xml     := #text
json    := #text
`)
	doc, err := s.GenerateSample(SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload := doc.ElementsByName("payload")[0]
	kids := payload.ChildElements("")
	if len(kids) != 2 {
		t.Fatalf("choice sample should contain all alternatives, got %d", len(kids))
	}
	for _, k := range kids {
		if ReadSampleInfo(k).Group != "choice" {
			t.Fatalf("child %s missing choice annotation", k.Name)
		}
	}
}

func TestGenerateSampleRecursionCut(t *testing.T) {
	s := MustParseCompact(`
section := title, section*
title   := #text
`)
	doc, err := s.GenerateSample(SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sections := doc.ElementsByName("section")
	// Root section plus two cut-marker children; no deeper expansion.
	if len(sections) != 3 {
		t.Fatalf("sections = %d, want 3 (root + 2 cut markers)", len(sections))
	}
	if !ReadSampleInfo(sections[1]).Recursive {
		t.Fatal("recursion marker missing")
	}
	if len(sections[1].Children) != 0 {
		t.Fatal("cut element should not expand")
	}
}

func TestSchemaStringRoundTrip(t *testing.T) {
	s := MustParseCompact(deptSchema)
	printed := s.String()
	s2, err := ParseCompact(printed)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", printed, err)
	}
	if s2.Root.Name != "dept" {
		t.Fatal("round trip lost root")
	}
	if s2.Lookup("sal").Type != TypeInt {
		t.Fatal("round trip lost leaf type")
	}
	if s2.Lookup("employees").Particle("emp").Card() != "*" {
		t.Fatal("round trip lost cardinality")
	}
	if !strings.Contains(printed, "dept :=") {
		t.Fatalf("printed schema missing root decl: %q", printed)
	}
}

func TestDeclareAndLookup(t *testing.T) {
	s := NewSchema()
	a := s.Declare("a")
	if s.Declare("a") != a {
		t.Fatal("Declare should be idempotent")
	}
	if s.Root != a {
		t.Fatal("first Declare should become root")
	}
	if s.Lookup("zzz") != nil {
		t.Fatal("Lookup of unknown should be nil")
	}
}
