package xschema

// MustParseCompact is a test-only helper: the production API returns
// errors; tests with compiled-in schemas use this and treat a parse failure
// as a bug.
func MustParseCompact(src string) *Schema {
	s, err := ParseCompact(src)
	if err != nil {
		panic(err)
	}
	return s
}
