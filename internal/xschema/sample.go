package xschema

import (
	"fmt"

	"repro/internal/xmltree"
)

// Annotation attribute names used on sample documents, in the spirit of the
// paper's "special attribute belonging to predefined Oracle XDB namespace"
// (§4.2). The partial evaluator reads these to learn model-group and
// cardinality facts that plain XML cannot carry.
const (
	// AnnotPrefix is the reserved prefix of all annotation attributes.
	AnnotPrefix = "xdb"
	// AnnotGroup carries the model group of the parent ("choice", "all").
	AnnotGroup = "xdb:group"
	// AnnotMaxOccurs is "unbounded" (or a number) when the element may
	// repeat.
	AnnotMaxOccurs = "xdb:maxOccurs"
	// AnnotMinOccurs is "0" when the element is optional.
	AnnotMinOccurs = "xdb:minOccurs"
	// AnnotType carries the simple type of a leaf ("int", "float").
	AnnotType = "xdb:type"
	// AnnotRecursive marks an element that references an ancestor
	// declaration; the sample stops expanding there.
	AnnotRecursive = "xdb:recursive"
)

// SampleOptions configure sample generation.
type SampleOptions struct {
	// LeafText is the placeholder text for string leaves (default "x").
	LeafText string
}

// GenerateSample builds the sample XML document of §4.2: one document that
// captures all structural information of the schema but no real content.
// Every child declared by a model group appears (choice alternatives all
// appear, annotated); repeating particles appear TWICE with a maxOccurs
// annotation so sibling-axis recursion is observable during the trace;
// optional particles carry a minOccurs annotation. Recursive references are
// cut with an xdb:recursive marker.
func (s *Schema) GenerateSample(opts SampleOptions) (*xmltree.Node, error) {
	if s.Root == nil {
		return nil, fmt.Errorf("xschema: schema has no root element")
	}
	if opts.LeafText == "" {
		opts.LeafText = "x"
	}
	doc := xmltree.NewDocument()
	active := map[string]bool{}
	root, err := sampleElem(s.Root, nil, opts, active)
	if err != nil {
		return nil, err
	}
	doc.AppendChild(root)
	doc.Renumber()
	return doc, nil
}

func sampleElem(d *ElemDecl, from *Particle, opts SampleOptions, active map[string]bool) (*xmltree.Node, error) {
	el := xmltree.NewElement(d.Name)
	if from != nil {
		if from.Repeating() {
			if from.Max == Unbounded {
				el.SetAttr(AnnotMaxOccurs, "unbounded")
			} else {
				el.SetAttr(AnnotMaxOccurs, fmt.Sprintf("%d", from.Max))
			}
		}
		if from.Optional() {
			el.SetAttr(AnnotMinOccurs, "0")
		}
	}
	if active[d.Name] {
		el.SetAttr(AnnotRecursive, "true")
		return el, nil
	}
	active[d.Name] = true
	defer delete(active, d.Name)

	for _, a := range d.Attrs {
		el.SetAttr(a.Name, sampleAttrValue(a))
	}

	switch d.Group {
	case GroupText:
		if d.Type != TypeString {
			el.SetAttr(AnnotType, d.Type.String())
		}
		el.AppendChild(xmltree.NewText(sampleLeafText(d.Type, opts)))
	case GroupEmpty:
		// nothing
	case GroupChoice, GroupAll:
		for _, p := range d.Children {
			kids, err := sampleOccurrences(p, opts, active)
			if err != nil {
				return nil, err
			}
			for _, child := range kids {
				child.SetAttr(AnnotGroup, d.Group.String())
				el.AppendChild(child)
			}
		}
	default: // sequence
		for _, p := range d.Children {
			kids, err := sampleOccurrences(p, opts, active)
			if err != nil {
				return nil, err
			}
			for _, child := range kids {
				el.AppendChild(child)
			}
		}
	}
	return el, nil
}

// sampleOccurrences emits one occurrence for a [0..1] particle and two for
// a repeating one (so following-/preceding-sibling relationships between
// occurrences of the same element exist in the sample).
func sampleOccurrences(p *Particle, opts SampleOptions, active map[string]bool) ([]*xmltree.Node, error) {
	first, err := sampleElem(p.Child, p, opts, active)
	if err != nil {
		return nil, err
	}
	if !p.Repeating() {
		return []*xmltree.Node{first}, nil
	}
	second, err := sampleElem(p.Child, p, opts, active)
	if err != nil {
		return nil, err
	}
	return []*xmltree.Node{first, second}, nil
}

func sampleLeafText(t Type, opts SampleOptions) string {
	switch t {
	case TypeInt:
		return "0"
	case TypeFloat:
		return "0.0"
	default:
		return opts.LeafText
	}
}

func sampleAttrValue(a *AttrDecl) string {
	switch a.Type {
	case TypeInt:
		return "0"
	case TypeFloat:
		return "0.0"
	default:
		return "x"
	}
}

// SampleInfo reads the structural annotations back off a sample-document
// element.
type SampleInfo struct {
	Group     string // "choice", "all" or "" (sequence)
	Unbounded bool
	Optional  bool
	Recursive bool
	Type      Type
}

// ReadSampleInfo decodes the xdb:* annotations of a sample element.
func ReadSampleInfo(el *xmltree.Node) SampleInfo {
	info := SampleInfo{Group: el.AttrValue(AnnotGroup)}
	if v := el.AttrValue(AnnotMaxOccurs); v == "unbounded" || v == "2" || (v != "" && v != "1") {
		info.Unbounded = true
	}
	if el.AttrValue(AnnotMinOccurs) == "0" {
		info.Optional = true
	}
	if el.AttrValue(AnnotRecursive) == "true" {
		info.Recursive = true
	}
	switch el.AttrValue(AnnotType) {
	case "int":
		info.Type = TypeInt
	case "float":
		info.Type = TypeFloat
	}
	return info
}
