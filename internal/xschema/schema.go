// Package xschema models the structural information of XML documents that
// the paper's partial evaluator consumes (§3.2, §4.2): element declarations
// with model groups (sequence / choice / all), occurrence cardinalities,
// attribute declarations and simple types.
//
// Structural information can come from three places, mirroring the paper:
//   - a schema written in the compact schema language (ParseCompact), the
//     stand-in for registered XML Schemas / DTDs;
//   - the shape of a SQL/XML view over relational tables (derived in
//     internal/sqlxml);
//   - static typing of a generated XQuery (derived in internal/core for the
//     combined optimisation of Example 2).
package xschema

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the simple type of a text leaf or attribute.
type Type uint8

// Simple types.
const (
	TypeString Type = iota
	TypeInt
	TypeFloat
)

// String returns the compact-language spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	default:
		return "string"
	}
}

// ModelGroup is the compositor of an element's children.
type ModelGroup uint8

// Model groups. GroupText marks a text-only leaf; GroupEmpty an element
// with no content.
const (
	GroupSeq ModelGroup = iota
	GroupChoice
	GroupAll
	GroupText
	GroupEmpty
)

// String names the model group.
func (g ModelGroup) String() string {
	switch g {
	case GroupSeq:
		return "sequence"
	case GroupChoice:
		return "choice"
	case GroupAll:
		return "all"
	case GroupText:
		return "text"
	case GroupEmpty:
		return "empty"
	}
	return "?"
}

// Unbounded is the Max value of an unbounded particle.
const Unbounded = -1

// Particle is one child slot of an element declaration.
type Particle struct {
	Child *ElemDecl
	Min   int
	Max   int // Unbounded (-1) for *, +
}

// Optional reports Min == 0.
func (p *Particle) Optional() bool { return p.Min == 0 }

// Repeating reports whether more than one occurrence is possible.
func (p *Particle) Repeating() bool { return p.Max == Unbounded || p.Max > 1 }

// Card returns the conventional suffix for the particle's cardinality:
// "", "?", "*", or "+".
func (p *Particle) Card() string {
	switch {
	case p.Min == 1 && p.Max == 1:
		return ""
	case p.Min == 0 && p.Max == 1:
		return "?"
	case p.Min == 0:
		return "*"
	default:
		return "+"
	}
}

// AttrDecl declares an attribute of an element.
type AttrDecl struct {
	Name     string
	Type     Type
	Optional bool
}

// ElemDecl declares an element: its content model and attributes.
type ElemDecl struct {
	Name     string
	Group    ModelGroup
	Children []*Particle
	Attrs    []*AttrDecl
	// Type is the simple type of a GroupText leaf.
	Type Type
}

// Particle returns the child particle with the given element name, or nil.
func (d *ElemDecl) Particle(name string) *Particle {
	for _, p := range d.Children {
		if p.Child.Name == name {
			return p
		}
	}
	return nil
}

// Attr returns the declared attribute with the given name, or nil.
func (d *ElemDecl) Attr(name string) *AttrDecl {
	for _, a := range d.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// IsLeaf reports whether the element holds only text.
func (d *ElemDecl) IsLeaf() bool { return d.Group == GroupText }

// Schema is a set of element declarations with a distinguished root.
type Schema struct {
	Root     *ElemDecl
	Elements map[string]*ElemDecl
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{Elements: map[string]*ElemDecl{}}
}

// Declare adds (or returns the existing) element declaration with the name.
func (s *Schema) Declare(name string) *ElemDecl {
	if d, ok := s.Elements[name]; ok {
		return d
	}
	d := &ElemDecl{Name: name, Group: GroupText}
	s.Elements[name] = d
	if s.Root == nil {
		s.Root = d
	}
	return d
}

// Lookup returns the declaration for name, or nil.
func (s *Schema) Lookup(name string) *ElemDecl {
	return s.Elements[name]
}

// RecursiveElements returns the names of elements that participate in a
// reference cycle (an element reachable from itself), sorted. The paper's
// partial evaluator does not handle recursive structures (§7.2); the
// rewriter uses this to fall back to non-inline translation.
func (s *Schema) RecursiveElements() []string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	recursive := map[string]bool{}
	var visit func(d *ElemDecl, stack []string)
	visit = func(d *ElemDecl, stack []string) {
		color[d.Name] = grey
		stack = append(stack, d.Name)
		for _, p := range d.Children {
			switch color[p.Child.Name] {
			case white:
				visit(p.Child, stack)
			case grey:
				// Everything on the stack from the back-edge target on is
				// part of a cycle.
				for i := len(stack) - 1; i >= 0; i-- {
					recursive[stack[i]] = true
					if stack[i] == p.Child.Name {
						break
					}
				}
			}
		}
		color[d.Name] = black
	}
	if s.Root != nil {
		visit(s.Root, nil)
	}
	for _, d := range s.Elements {
		if color[d.Name] == white {
			visit(d, nil)
		}
	}
	out := make([]string, 0, len(recursive))
	for name := range recursive {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsRecursive reports whether any element participates in a cycle.
func (s *Schema) IsRecursive() bool { return len(s.RecursiveElements()) > 0 }

// String renders the schema back in the compact language (one declaration
// per line, root first, the rest alphabetical).
func (s *Schema) String() string {
	var names []string
	for n := range s.Elements {
		if s.Root != nil && n == s.Root.Name {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if s.Root != nil {
		names = append([]string{s.Root.Name}, names...)
	}
	var sb strings.Builder
	for _, n := range names {
		d := s.Elements[n]
		if d.Group == GroupText && len(d.Attrs) == 0 && d.Type == TypeString && s.Root != d {
			continue // implicit string leaves need no line
		}
		sb.WriteString(declString(d))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func declString(d *ElemDecl) string {
	var sb strings.Builder
	sb.WriteString(d.Name)
	sb.WriteString(" :=")
	var parts []string
	for _, a := range d.Attrs {
		p := "@" + a.Name
		if a.Type != TypeString {
			p += ":" + a.Type.String()
		}
		if a.Optional {
			p += "?"
		}
		parts = append(parts, p)
	}
	sep := ", "
	switch d.Group {
	case GroupChoice:
		sep = " | "
	case GroupAll:
		sep = " & "
	}
	var kids []string
	for _, p := range d.Children {
		ref := p.Child.Name
		if p.Child.Group == GroupText && p.Child.Type != TypeString {
			ref += ":" + p.Child.Type.String()
		}
		ref += p.Card()
		kids = append(kids, ref)
	}
	switch d.Group {
	case GroupText:
		if d.Type != TypeString {
			parts = append(parts, "#"+d.Type.String())
		} else {
			parts = append(parts, "#text")
		}
	case GroupEmpty:
		parts = append(parts, "#empty")
	default:
		parts = append(parts, strings.Join(kids, sep))
	}
	sb.WriteString(" " + strings.Join(parts, ", "))
	return sb.String()
}

// parseType parses a simple type name.
func parseType(s string) (Type, error) {
	switch s {
	case "int":
		return TypeInt, nil
	case "float":
		return TypeFloat, nil
	case "string", "":
		return TypeString, nil
	}
	return TypeString, fmt.Errorf("xschema: unknown type %q", s)
}

// Parents returns the names of elements that declare name as a child,
// sorted. The root element additionally has the document as an implicit
// parent (not represented here).
func (s *Schema) Parents(name string) []string {
	var out []string
	seen := map[string]bool{}
	for _, d := range s.Elements {
		for _, p := range d.Children {
			if p.Child.Name == name && !seen[d.Name] {
				seen[d.Name] = true
				out = append(out, d.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// OnlyParent returns the single possible parent element name of name, or ""
// when the element can appear under several parents, under none, or is the
// schema root (whose parent is the document).
func (s *Schema) OnlyParent(name string) string {
	if s.Root != nil && s.Root.Name == name {
		return ""
	}
	ps := s.Parents(name)
	if len(ps) == 1 {
		return ps[0]
	}
	return ""
}
