package xschema

import (
	"fmt"
	"strings"
)

// ParseCompact parses the compact schema language, the repository's
// stand-in for registered XML Schemas and DTDs (§3.2).
//
// One declaration per line:
//
//	dept      := dname, loc, employees     # sequence model group
//	employees := emp*                      # cardinalities: ? * +
//	emp       := @id:int?, empno:int, ename, sal:int
//	payload   := xml | json | csv          # choice model group
//	bundle    := meta & data               # all model group
//	note      := #text                     # explicit text leaf
//	count     := #int                      # typed text leaf
//	marker    := #empty                    # empty element
//
// The first declared element is the document root. Undeclared referenced
// names become string text leaves; a reference may carry a type
// (`sal:int`), which types that leaf. '#' starts a comment.
func ParseCompact(src string) (*Schema, error) {
	s := NewSchema()
	type pendingDecl struct {
		name string
		rhs  string
		line int
	}
	var decls []pendingDecl
	seen := map[string]int{}

	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		// '#' starts a comment unless it begins a content token (#text,
		// #int, #float, #empty) — those always follow ":=" or ", ".
		if i := commentStart(line); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, rhs, ok := strings.Cut(line, ":=")
		if !ok {
			return nil, fmt.Errorf("xschema: line %d: expected 'name := content', got %q", lineno+1, line)
		}
		name = strings.TrimSpace(name)
		if name == "" || !validName(name) {
			return nil, fmt.Errorf("xschema: line %d: bad element name %q", lineno+1, name)
		}
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("xschema: line %d: element %q already declared on line %d", lineno+1, name, prev)
		}
		seen[name] = lineno + 1
		decls = append(decls, pendingDecl{name: name, rhs: rhs, line: lineno + 1})
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("xschema: empty schema")
	}

	// First pass: declare all LHS names so order doesn't matter.
	for _, d := range decls {
		s.Declare(d.name)
	}
	s.Root = s.Elements[decls[0].name]

	// Second pass: parse content models.
	var typed []typedRef
	for _, d := range decls {
		if err := parseContent(s, s.Elements[d.name], d.rhs, d.line, &typed); err != nil {
			return nil, err
		}
	}
	// A type annotation on a reference (sal:int) is only legal when the
	// referenced element stayed a text leaf.
	for _, tr := range typed {
		if d := s.Elements[tr.name]; d != nil && d.Group != GroupText {
			return nil, fmt.Errorf("xschema: line %d: cannot type non-leaf element %q", tr.line, tr.name)
		}
	}
	return s, nil
}

// typedRef records a typed element reference for post-parse validation.
type typedRef struct {
	name string
	line int
}


// commentStart finds the index of a comment '#', skipping content tokens
// like #text/#int/#float/#empty.
func commentStart(line string) int {
	for i := 0; i < len(line); i++ {
		if line[i] != '#' {
			continue
		}
		rest := line[i:]
		if strings.HasPrefix(rest, "#text") || strings.HasPrefix(rest, "#int") ||
			strings.HasPrefix(rest, "#float") || strings.HasPrefix(rest, "#string") ||
			strings.HasPrefix(rest, "#empty") {
			continue
		}
		return i
	}
	return -1
}

func validName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case (r >= '0' && r <= '9' || r == '-' || r == '.') && i > 0:
		default:
			return false
		}
	}
	return len(s) > 0
}

func parseContent(s *Schema, decl *ElemDecl, rhs string, line int, typed *[]typedRef) error {
	rhs = strings.TrimSpace(rhs)
	if rhs == "" {
		return fmt.Errorf("xschema: line %d: empty content model for %q", line, decl.Name)
	}

	// Determine the model group from the separators present.
	hasChoice := strings.Contains(rhs, "|")
	hasAll := strings.Contains(rhs, "&")
	if hasChoice && hasAll {
		return fmt.Errorf("xschema: line %d: cannot mix '|' and '&' in one content model", line)
	}
	sep := ","
	group := GroupSeq
	switch {
	case hasChoice:
		sep, group = "|", GroupChoice
	case hasAll:
		sep, group = "&", GroupAll
	}

	items := strings.Split(rhs, sep)
	// Attributes may be comma-separated before a choice/all group; re-split
	// leading @-items when using | or &.
	var tokens []string
	for _, it := range items {
		it = strings.TrimSpace(it)
		if it == "" {
			return fmt.Errorf("xschema: line %d: empty item in content model for %q", line, decl.Name)
		}
		if sep != "," && strings.Contains(it, ",") {
			// Attributes may be comma-separated ahead of the first group
			// member: "@a, @b, x | y".
			for _, sub := range strings.Split(it, ",") {
				if sub = strings.TrimSpace(sub); sub != "" {
					tokens = append(tokens, sub)
				}
			}
			continue
		}
		tokens = append(tokens, it)
	}

	decl.Group = group
	decl.Children = nil
	sawContent := false
	for _, tok := range tokens {
		switch {
		case strings.HasPrefix(tok, "@"):
			a, err := parseAttrToken(tok, line)
			if err != nil {
				return err
			}
			decl.Attrs = append(decl.Attrs, a)
		case tok == "#text" || tok == "#string" || tok == "#int" || tok == "#float":
			if sawContent {
				return fmt.Errorf("xschema: line %d: %s must be the only content of %q", line, tok, decl.Name)
			}
			decl.Group = GroupText
			t, _ := parseType(strings.TrimPrefix(strings.TrimPrefix(tok, "#"), "#"))
			if tok == "#text" {
				t = TypeString
			}
			decl.Type = t
			sawContent = true
		case tok == "#empty":
			decl.Group = GroupEmpty
			sawContent = true
		default:
			p, err := parseParticleToken(s, tok, line, typed)
			if err != nil {
				return err
			}
			decl.Children = append(decl.Children, p)
			sawContent = true
		}
	}
	if len(decl.Children) == 0 && decl.Group != GroupText && decl.Group != GroupEmpty {
		return fmt.Errorf("xschema: line %d: %q has no content", line, decl.Name)
	}
	return nil
}

func parseAttrToken(tok string, line int) (*AttrDecl, error) {
	body := strings.TrimPrefix(tok, "@")
	optional := false
	if strings.HasSuffix(body, "?") {
		optional = true
		body = strings.TrimSuffix(body, "?")
	}
	name, typ, _ := strings.Cut(body, ":")
	if !validName(name) {
		return nil, fmt.Errorf("xschema: line %d: bad attribute name %q", line, name)
	}
	t, err := parseType(typ)
	if err != nil {
		return nil, fmt.Errorf("xschema: line %d: %v", line, err)
	}
	return &AttrDecl{Name: name, Type: t, Optional: optional}, nil
}

func parseParticleToken(s *Schema, tok string, line int, typed *[]typedRef) (*Particle, error) {
	min, max := 1, 1
	switch {
	case strings.HasSuffix(tok, "?"):
		min, max = 0, 1
		tok = strings.TrimSuffix(tok, "?")
	case strings.HasSuffix(tok, "*"):
		min, max = 0, Unbounded
		tok = strings.TrimSuffix(tok, "*")
	case strings.HasSuffix(tok, "+"):
		min, max = 1, Unbounded
		tok = strings.TrimSuffix(tok, "+")
	}
	name, typ, hasType := strings.Cut(tok, ":")
	name = strings.TrimSpace(name)
	if !validName(name) {
		return nil, fmt.Errorf("xschema: line %d: bad element reference %q", line, tok)
	}
	child := s.Declare(name)
	if hasType {
		t, err := parseType(strings.TrimSpace(typ))
		if err != nil {
			return nil, fmt.Errorf("xschema: line %d: %v", line, err)
		}
		child.Type = t
		*typed = append(*typed, typedRef{name: name, line: line})
	}
	return &Particle{Child: child, Min: min, Max: max}, nil
}
