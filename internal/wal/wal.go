// Package wal is a segmented write-ahead log with CRC-framed records,
// pluggable fsync policies, and torn-tail crash recovery.
//
// The log is payload-agnostic: callers append (type, payload) records and
// replay them on Open. Each record is framed as
//
//	[uint32 LE length] [uint32 LE CRC-32/IEEE of type+payload] [1 type byte] [payload]
//
// where length counts the type byte plus the payload, so the minimum frame
// is 9 bytes. Segments are files named wal-00000000.log, wal-00000001.log,
// ... inside the log directory; appends roll to a new segment once the
// current one reaches Options.SegmentBytes.
//
// # Recovery
//
// Open scans the segments in order and replays every intact frame. The
// first torn frame — a short header, an implausible length, a truncated
// body, or a CRC mismatch (all of which a crash mid-write can produce) —
// ends the log: the segment is truncated back to the last intact frame
// boundary and any later segments are deleted, so the recovered state is
// exactly the committed prefix. An all-zero header (space preallocated but
// never written) is handled by the same rule, since a zero length is
// implausible.
//
// # Durability policies
//
// SyncAlways fsyncs after every append — a record acknowledged is a record
// recovered. SyncInterval fsyncs every SyncEvery appends; SyncNever leaves
// syncing to the OS. Under the relaxed policies a crash may lose the
// unsynced tail, but recovery still truncates to a clean prefix — the log
// never replays a half-written record.
//
// # Fault injection
//
// Three faultpoint sites make IO failures deterministic in tests:
//
//	wal.append — fires before the frame is written; the log writes a
//	             partial frame (a torn write, as a crash mid-write would
//	             leave) and wedges itself, forcing the reopen path
//	wal.fsync  — fires in place of fsync; the append is rolled back by
//	             truncating to the pre-append size, so the log holds the
//	             committed prefix exactly
//	wal.rotate — fires before a segment rollover
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultpoint"
)

// Frame layout constants.
const (
	headerBytes = 8              // length + CRC
	maxRecord   = 64 << 20       // implausible-length guard (64 MiB)
	segPattern  = "wal-%08d.log" // segment file name
	segGlob     = "wal-*.log"    // segment discovery glob
)

// DefaultSegmentBytes is the rotation threshold when Options leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

// DefaultSyncEvery is the SyncInterval batch size when Options leaves
// SyncEvery zero.
const DefaultSyncEvery = 16

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append (full durability).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery appends.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever
)

// String names the policy as it appears in benchmarks and docs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SyncEvery is the append count between fsyncs under SyncInterval
	// (default DefaultSyncEvery; ignored otherwise).
	SyncEvery int
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// OnAppend, when non-nil, fires after each durably-accepted append with
	// the wall time the append spent inside the log (frame write plus any
	// policy-driven fsync or rotation) — the hook the facade wires to its
	// append counter and latency histogram. The package stays free of any
	// observability dependency; hooks carry durations, the facade decides
	// what to do with them.
	OnAppend func(time.Duration)
	// OnFsync, when non-nil, fires after each successful fsync with the
	// fsync's own wall time.
	OnFsync func(time.Duration)
	// OnRotate, when non-nil, fires after each segment rotation with the
	// rotation's wall time (sealing sync + close + next-segment open).
	OnRotate func(time.Duration)
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) syncEvery() int {
	if o.SyncEvery <= 0 {
		return DefaultSyncEvery
	}
	return o.SyncEvery
}

// Errors.
var (
	// ErrClosed reports an append or sync on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrWedged reports use of a log after a torn write: the on-disk tail
	// is unknown, so the only safe operation is to reopen (and recover).
	ErrWedged = errors.New("wal: log wedged by a torn write; reopen to recover")
)

// RecoverStats describes what Open's replay found.
type RecoverStats struct {
	// Records is the number of intact records replayed.
	Records int
	// TornBytes is how many trailing bytes were truncated away.
	TornBytes int64
	// SegmentsDropped is how many whole later segments were deleted after
	// a torn frame ended the log early.
	SegmentsDropped int
	// Segments is the number of live segments after recovery.
	Segments int
}

// Log is an append-only segmented write-ahead log. All methods are safe for
// concurrent use; appends are serialized internally.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	seg       int   // current segment index
	size      int64 // current segment size (committed bytes)
	sinceSync int
	closed    bool
	wedged    bool
}

// Open recovers the log in dir — replaying every intact record through
// replay, truncating the torn tail, dropping unreachable later segments —
// and opens it for appending. The directory is created if missing. A replay
// callback error aborts Open (the callback decides whether a record that
// cannot apply is fatal).
func Open(dir string, opts Options, replay func(typ byte, payload []byte) error) (*Log, RecoverStats, error) {
	var rs RecoverStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rs, fmt.Errorf("wal: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, rs, err
	}
	lastSeg := 0
	var lastSize int64
	torn := false
	for i, seg := range segs {
		if torn {
			// A torn frame ended the log in an earlier segment: everything
			// after it is unreachable and must not survive to confuse a
			// future recovery.
			if err := os.Remove(segPath(dir, seg)); err != nil {
				return nil, rs, fmt.Errorf("wal: dropping segment %d: %w", seg, err)
			}
			rs.SegmentsDropped++
			continue
		}
		n, committed, sawTorn, err := replaySegment(segPath(dir, seg), replay)
		if err != nil {
			return nil, rs, err
		}
		rs.Records += n
		lastSeg, lastSize = seg, committed
		if sawTorn {
			torn = true
			fi, statErr := os.Stat(segPath(dir, seg))
			if statErr == nil {
				rs.TornBytes += fi.Size() - committed
			}
			if err := os.Truncate(segPath(dir, seg), committed); err != nil {
				return nil, rs, fmt.Errorf("wal: truncating torn tail of segment %d: %w", seg, err)
			}
		}
		_ = i
	}
	if len(segs) > 0 {
		rs.Segments = len(segs) - rs.SegmentsDropped
	} else {
		rs.Segments = 1
	}
	f, err := os.OpenFile(segPath(dir, lastSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rs, fmt.Errorf("wal: %w", err)
	}
	return &Log{dir: dir, opts: opts, f: f, seg: lastSeg, size: lastSize}, rs, nil
}

// segments lists the live segment indexes in dir, ascending.
func segments(dir string) ([]int, error) {
	names, err := filepath.Glob(filepath.Join(dir, segGlob))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(name), segPattern, &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

func segPath(dir string, seg int) string {
	return filepath.Join(dir, fmt.Sprintf(segPattern, seg))
}

// replaySegment replays one segment's intact frames. It returns the record
// count, the committed byte offset (the end of the last intact frame), and
// whether a torn frame ended the scan.
func replaySegment(path string, replay func(typ byte, payload []byte) error) (n int, committed int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return n, off, false, nil
		}
		if len(rest) < headerBytes {
			return n, off, true, nil // short header
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length == 0 || length > maxRecord {
			return n, off, true, nil // zero or implausible length
		}
		if int64(len(rest)) < int64(headerBytes)+int64(length) {
			return n, off, true, nil // truncated body
		}
		body := rest[headerBytes : headerBytes+int64(length)]
		if crc32.ChecksumIEEE(body) != crc {
			return n, off, true, nil // corrupt frame
		}
		if replay != nil {
			if err := replay(body[0], body[1:]); err != nil {
				return n, off, false, fmt.Errorf("wal: replay record %d: %w", n, err)
			}
		}
		n++
		off += int64(headerBytes) + int64(length)
	}
}

// encodeFrame renders one record's on-disk frame.
func encodeFrame(typ byte, payload []byte) []byte {
	frame := make([]byte, headerBytes+1+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(1+len(payload)))
	frame[8] = typ
	copy(frame[9:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	return frame
}

// Append writes one record, rotating segments and syncing per the log's
// policy. On return without error the record is in the log (durably, under
// SyncAlways). On an fsync failure the append is rolled back by truncating
// to the pre-append size, so the file still holds exactly the committed
// prefix; on a torn write the log wedges (ErrWedged) until reopened.
func (l *Log) Append(typ byte, payload []byte) error {
	if len(payload) >= maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.wedged:
		return ErrWedged
	}
	start := time.Now()
	if l.size >= l.opts.segmentBytes() && l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	frame := encodeFrame(typ, payload)
	if err := faultpoint.Hit("wal.append"); err != nil {
		// Simulate the torn write a crash mid-append leaves behind: half a
		// frame on disk, then nothing. The log is now in an unknown state
		// on disk, so it wedges until a reopen recovers it.
		_, _ = l.f.Write(frame[:len(frame)/2])
		l.wedged = true
		return err
	}
	prev := l.size
	if _, err := l.f.Write(frame); err != nil {
		// A real partial write: try to cut the file back to the committed
		// prefix; if even that fails the on-disk state is unknown — wedge.
		if terr := l.f.Truncate(prev); terr != nil {
			l.wedged = true
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(prev); err != nil {
			return err
		}
	case SyncInterval:
		l.sinceSync++
		if l.sinceSync >= l.opts.syncEvery() {
			if err := l.syncLocked(prev); err != nil {
				return err
			}
		}
	}
	if l.opts.OnAppend != nil {
		l.opts.OnAppend(time.Since(start))
	}
	return nil
}

// syncLocked fsyncs the current segment. On failure (injected or real) the
// in-flight append is rolled back to rollbackTo so the log holds exactly
// the records whose Append returned nil.
func (l *Log) syncLocked(rollbackTo int64) error {
	// The timer starts before the faultpoint so an injected stall
	// (faultpoint.EnableSleep) is measured like a real slow fsync; the
	// injected-error path returns before any duration is reported.
	start := time.Now()
	if err := faultpoint.Hit("wal.fsync"); err != nil {
		l.rollbackLocked(rollbackTo)
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.rollbackLocked(rollbackTo)
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.sinceSync = 0
	if l.opts.OnFsync != nil {
		l.opts.OnFsync(time.Since(start))
	}
	return nil
}

// rollbackLocked cuts the segment back to a known-committed offset after a
// failed sync; if the truncate itself fails the on-disk state is unknown
// and the log wedges.
func (l *Log) rollbackLocked(to int64) {
	if err := l.f.Truncate(to); err != nil {
		l.wedged = true
		return
	}
	if _, err := l.f.Seek(to, io.SeekStart); err != nil {
		l.wedged = true
		return
	}
	l.size = to
}

// rotateLocked seals the current segment (syncing it, whatever the policy —
// a sealed segment must be durable before the log moves on) and starts the
// next one.
func (l *Log) rotateLocked() error {
	if err := faultpoint.Hit("wal.rotate"); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment %d: %w", l.seg, err)
	}
	if l.opts.OnFsync != nil {
		l.opts.OnFsync(time.Since(start))
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment %d: %w", l.seg, err)
	}
	f, err := os.OpenFile(segPath(l.dir, l.seg+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment %d: %w", l.seg+1, err)
	}
	l.f, l.seg, l.size, l.sinceSync = f, l.seg+1, 0, 0
	if l.opts.OnRotate != nil {
		l.opts.OnRotate(time.Since(start))
	}
	return nil
}

// Sync forces an fsync of the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.wedged:
		return ErrWedged
	}
	return l.syncLocked(l.size)
}

// Close syncs (unless wedged) and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var syncErr error
	if !l.wedged {
		start := time.Now()
		syncErr = l.f.Sync()
		if syncErr == nil && l.opts.OnFsync != nil {
			l.opts.OnFsync(time.Since(start))
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("wal: close: %w", syncErr)
	}
	return nil
}

// Segment reports the current segment index (for tests and introspection).
func (l *Log) Segment() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Size reports the committed byte size of the current segment.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// SegmentFiles lists the log's segment file paths in replay order — the
// offset-sweep crash tests corrupt these directly.
func SegmentFiles(dir string) ([]string, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(segs))
	for i, s := range segs {
		paths[i] = segPath(dir, s)
	}
	return paths, nil
}
