package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/faultpoint"
)

type rec struct {
	typ     byte
	payload []byte
}

// collect reopens dir with a recording replay callback.
func collect(t *testing.T, dir string, opts Options) (*Log, RecoverStats, []rec) {
	t.Helper()
	var got []rec
	lg, rs, err := Open(dir, opts, func(typ byte, payload []byte) error {
		got = append(got, rec{typ, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return lg, rs, got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	lg, rs, got := collect(t, dir, Options{})
	if rs.Records != 0 || len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", rs.Records)
	}
	want := []rec{
		{1, []byte("alpha")},
		{2, nil},
		{3, bytes.Repeat([]byte{0xAB}, 10_000)},
		{1, []byte("omega")},
	}
	for _, r := range want {
		if err := lg.Append(r.typ, r.payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lg2, rs, got := collect(t, dir, Options{})
	defer lg2.Close()
	if rs.Records != len(want) {
		t.Fatalf("replayed %d records, want %d", rs.Records, len(want))
	}
	for i, r := range want {
		if got[i].typ != r.typ || !bytes.Equal(got[i].payload, r.payload) {
			t.Fatalf("record %d mismatch: got type %d len %d", i, got[i].typ, len(got[i].payload))
		}
	}
	if rs.TornBytes != 0 || rs.SegmentsDropped != 0 {
		t.Fatalf("clean log reported torn bytes %d, dropped %d", rs.TornBytes, rs.SegmentsDropped)
	}
}

func TestCloseIdempotent(t *testing.T) {
	lg, _, _ := collect(t, t.TempDir(), Options{})
	if err := lg.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := lg.Append(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := lg.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v, want ErrClosed", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation quickly: each frame is 9+8 = 17 bytes.
	lg, _, _ := collect(t, dir, Options{SegmentBytes: 64})
	const n = 40
	for i := 0; i < n; i++ {
		if err := lg.Append(7, []byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if lg.Segment() == 0 {
		t.Fatalf("no rotation happened after %d appends into 64-byte segments", n)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files, err := SegmentFiles(dir)
	if err != nil || len(files) < 2 {
		t.Fatalf("SegmentFiles: %v, %d files, want >= 2", err, len(files))
	}
	lg2, rs, got := collect(t, dir, Options{SegmentBytes: 64})
	defer lg2.Close()
	if rs.Records != n {
		t.Fatalf("replayed %d records across segments, want %d", rs.Records, n)
	}
	for i := 0; i < n; i++ {
		if string(got[i].payload) != fmt.Sprintf("%08d", i) {
			t.Fatalf("record %d out of order: %q", i, got[i].payload)
		}
	}
}

// TestTruncateAtEveryOffset is the crash-recovery property test: after
// writing N records, truncating the log at EVERY byte offset in the tail
// record must recover exactly the records before it — never a panic, never
// a partial record, and the log must accept appends again afterward.
func TestTruncateAtEveryOffset(t *testing.T) {
	const n = 5
	base := t.TempDir()
	// Build one pristine log image to copy from.
	master := base + "/master"
	lg, _, _ := collect(t, master, Options{})
	var offsets []int64 // committed size after each record
	for i := 0; i < n; i++ {
		if err := lg.Append(byte(i+1), []byte(fmt.Sprintf("record-%d-payload", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		offsets = append(offsets, lg.Size())
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files, err := SegmentFiles(master)
	if err != nil || len(files) != 1 {
		t.Fatalf("SegmentFiles: %v, %d files", err, len(files))
	}
	image, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("reading master image: %v", err)
	}
	tailStart := offsets[n-2] // last record spans [tailStart, len(image))

	for cut := tailStart; cut <= int64(len(image)); cut++ {
		dir := fmt.Sprintf("%s/cut-%d", base, cut)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dir+"/wal-00000000.log", image[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lg, rs, got := collect(t, dir, Options{})
		wantRecords := n - 1
		if cut == int64(len(image)) {
			wantRecords = n // uncut: the full log
		}
		if rs.Records != wantRecords {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, rs.Records, wantRecords)
		}
		for i, r := range got {
			want := fmt.Sprintf("record-%d-payload", i)
			if r.typ != byte(i+1) || string(r.payload) != want {
				t.Fatalf("cut at %d: record %d corrupted: type %d payload %q", cut, i, r.typ, r.payload)
			}
		}
		if wantRecords < n && rs.TornBytes != cut-tailStart {
			t.Fatalf("cut at %d: truncated %d torn bytes, want %d", cut, rs.TornBytes, cut-tailStart)
		}
		// The recovered log must be writable: append and re-replay.
		if err := lg.Append(99, []byte("after-recovery")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := lg.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
		lg2, rs2, _ := collect(t, dir, Options{})
		if rs2.Records != wantRecords+1 {
			t.Fatalf("cut at %d: second recovery got %d records, want %d", cut, rs2.Records, wantRecords+1)
		}
		lg2.Close()
	}
}

func TestCorruptFrameTruncatesTail(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(image []byte, tailStart int64) []byte
	}{
		{"flipped-payload-bit", func(im []byte, ts int64) []byte {
			im[int(ts)+headerBytes+2] ^= 0x01 // CRC mismatch
			return im
		}},
		{"zeroed-header", func(im []byte, ts int64) []byte {
			for i := int64(0); i < headerBytes; i++ {
				im[ts+i] = 0 // preallocated-but-unwritten space
			}
			return im
		}},
		{"implausible-length", func(im []byte, ts int64) []byte {
			im[ts] = 0xFF
			im[ts+1] = 0xFF
			im[ts+2] = 0xFF
			im[ts+3] = 0x7F
			return im
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			lg, _, _ := collect(t, dir, Options{})
			var tailStart int64
			for i := 0; i < 3; i++ {
				tailStart = lg.Size()
				if err := lg.Append(1, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := lg.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			files, _ := SegmentFiles(dir)
			image, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], tc.corrupt(image, tailStart), 0o644); err != nil {
				t.Fatal(err)
			}
			lg2, rs, got := collect(t, dir, Options{})
			defer lg2.Close()
			if rs.Records != 2 {
				t.Fatalf("recovered %d records, want 2 (corrupt tail dropped)", rs.Records)
			}
			if string(got[1].payload) != "rec-1" {
				t.Fatalf("surviving record corrupted: %q", got[1].payload)
			}
			if rs.TornBytes == 0 {
				t.Fatalf("corruption reported no torn bytes")
			}
		})
	}
}

func TestTornMiddleSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	lg, _, _ := collect(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := lg.Append(1, []byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files, _ := SegmentFiles(dir)
	if len(files) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(files))
	}
	// Tear the tail of the FIRST segment: everything after it is
	// unreachable and must be dropped, not replayed out of order.
	image, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], image[:len(image)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	lg2, rs, got := collect(t, dir, Options{SegmentBytes: 64})
	defer lg2.Close()
	if rs.SegmentsDropped != len(files)-1 {
		t.Fatalf("dropped %d segments, want %d", rs.SegmentsDropped, len(files)-1)
	}
	for i, r := range got {
		if string(r.payload) != fmt.Sprintf("%08d", i) {
			t.Fatalf("record %d out of order after drop: %q", i, r.payload)
		}
	}
	left, _ := SegmentFiles(dir)
	if len(left) != 1 {
		t.Fatalf("%d segment files survive, want 1", len(left))
	}
}

func TestAppendFaultTearsAndWedges(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	lg, _, _ := collect(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := lg.Append(1, []byte(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	boom := errors.New("injected torn write")
	faultpoint.Enable("wal.append", boom)
	if err := lg.Append(1, []byte("torn")); !errors.Is(err, boom) {
		t.Fatalf("faulted Append: %v, want injected error", err)
	}
	faultpoint.Disable("wal.append")
	// The log wedged: the on-disk tail is unknown until a reopen recovers.
	if err := lg.Append(1, []byte("after")); !errors.Is(err, ErrWedged) {
		t.Fatalf("Append on wedged log: %v, want ErrWedged", err)
	}
	if err := lg.Sync(); !errors.Is(err, ErrWedged) {
		t.Fatalf("Sync on wedged log: %v, want ErrWedged", err)
	}
	lg.Close()
	lg2, rs, got := collect(t, dir, Options{})
	defer lg2.Close()
	if rs.Records != 3 {
		t.Fatalf("recovered %d records, want the 3 committed before the tear", rs.Records)
	}
	if rs.TornBytes == 0 {
		t.Fatalf("torn write left no torn bytes to truncate")
	}
	if string(got[2].payload) != "good-2" {
		t.Fatalf("committed record corrupted: %q", got[2].payload)
	}
}

func TestFsyncFaultRollsBackAppend(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	lg, _, _ := collect(t, dir, Options{Policy: SyncAlways})
	if err := lg.Append(1, []byte("committed")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	boom := errors.New("injected fsync error")
	faultpoint.Enable("wal.fsync", boom)
	if err := lg.Append(1, []byte("uncommitted")); !errors.Is(err, boom) {
		t.Fatalf("faulted Append: %v, want injected error", err)
	}
	faultpoint.Disable("wal.fsync")
	// The failed append was rolled back — the log keeps working and holds
	// exactly the acknowledged records.
	if err := lg.Append(1, []byte("committed-2")); err != nil {
		t.Fatalf("Append after fsync failure: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lg2, rs, got := collect(t, dir, Options{})
	defer lg2.Close()
	if rs.Records != 2 {
		t.Fatalf("recovered %d records, want 2", rs.Records)
	}
	if string(got[0].payload) != "committed" || string(got[1].payload) != "committed-2" {
		t.Fatalf("recovered wrong records: %q, %q", got[0].payload, got[1].payload)
	}
	if rs.TornBytes != 0 {
		t.Fatalf("rollback left %d torn bytes on disk", rs.TornBytes)
	}
}

func TestRotateFaultFailsAppendCleanly(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	lg, _, _ := collect(t, dir, Options{SegmentBytes: 32})
	if err := lg.Append(1, bytes.Repeat([]byte("x"), 40)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	boom := errors.New("injected rotate error")
	faultpoint.Enable("wal.rotate", boom)
	if err := lg.Append(1, []byte("next")); !errors.Is(err, boom) {
		t.Fatalf("faulted Append: %v, want injected rotate error", err)
	}
	faultpoint.Disable("wal.rotate")
	// Rotation failure is clean: nothing was written, the next append
	// rotates and proceeds.
	if err := lg.Append(1, []byte("retried")); err != nil {
		t.Fatalf("Append after rotate failure: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lg2, rs, got := collect(t, dir, Options{SegmentBytes: 32})
	defer lg2.Close()
	if rs.Records != 2 {
		t.Fatalf("recovered %d records, want 2", rs.Records)
	}
	if string(got[1].payload) != "retried" {
		t.Fatalf("retried record lost: %q", got[1].payload)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			fsyncs := 0
			opts := Options{Policy: policy, SyncEvery: 4, OnFsync: func(time.Duration) { fsyncs++ }}
			lg, _, err := Open(dir, opts, nil)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			const n = 8
			for i := 0; i < n; i++ {
				if err := lg.Append(1, []byte("r")); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			switch policy {
			case SyncAlways:
				if fsyncs != n {
					t.Fatalf("SyncAlways issued %d fsyncs for %d appends", fsyncs, n)
				}
			case SyncInterval:
				if fsyncs != n/4 {
					t.Fatalf("SyncInterval(4) issued %d fsyncs for %d appends, want %d", fsyncs, n, n/4)
				}
			case SyncNever:
				if fsyncs != 0 {
					t.Fatalf("SyncNever issued %d fsyncs", fsyncs)
				}
			}
			if err := lg.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			lg2, rs, _ := collect(t, dir, opts)
			defer lg2.Close()
			if rs.Records != n {
				t.Fatalf("recovered %d records under %s, want %d", rs.Records, policy, n)
			}
		})
	}
}

func TestOversizeRecordRefused(t *testing.T) {
	lg, _, _ := collect(t, t.TempDir(), Options{})
	defer lg.Close()
	if err := lg.Append(1, make([]byte, maxRecord)); err == nil {
		t.Fatalf("oversize record accepted")
	}
	if err := lg.Append(1, []byte("fine")); err != nil {
		t.Fatalf("normal append after refusal: %v", err)
	}
}
