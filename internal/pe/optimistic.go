package pe

import (
	"repro/internal/xpath"
	"repro/internal/xslt"
)

// optimisticSheet returns a deep copy of the stylesheet transformed for the
// sample run:
//   - value-dependent predicates in every XPath expression become true()
//     (structure-only predicates like [empno] survive);
//   - xsl:if executes its body unconditionally;
//   - xsl:choose executes every branch (when bodies and otherwise);
//   - sort keys are dropped (order is irrelevant to the trace).
//
// The copy preserves template order/indexes so trace ids and template
// identities line up with the original stylesheet.
func optimisticSheet(sheet *xslt.Stylesheet) *xslt.Stylesheet {
	out := &xslt.Stylesheet{
		Version:       sheet.Version,
		OutputMethod:  sheet.OutputMethod,
		Source:        sheet.Source,
		Keys:          sheet.Keys,
		StripSpace:    sheet.StripSpace,
		PreserveSpace: sheet.PreserveSpace,
	}
	for _, def := range sheet.GlobalVars {
		out.GlobalVars = append(out.GlobalVars, optimisticVarDef(def))
	}
	for _, t := range sheet.Templates {
		nt := &xslt.Template{
			Match:    optimisticPattern(t.Match),
			MatchSrc: t.MatchSrc,
			Name:     t.Name,
			Mode:     t.Mode,
			Priority: t.Priority,
			Index:    t.Index,
		}
		for _, p := range t.Params {
			nt.Params = append(nt.Params, optimisticVarDef(p))
		}
		nt.Body = optimisticSeq(t.Body)
		out.Templates = append(out.Templates, nt)
	}
	return out
}

func optimisticVarDef(def *xslt.VarDef) *xslt.VarDef {
	return &xslt.VarDef{
		Name:    def.Name,
		Select:  optimisticExpr(def.Select),
		Body:    optimisticSeq(def.Body),
		IsParam: def.IsParam,
	}
}

func optimisticSeq(body []xslt.Instruction) []xslt.Instruction {
	var out []xslt.Instruction
	for _, in := range body {
		out = append(out, optimisticInstr(in)...)
	}
	return out
}

// optimisticInstr may expand one instruction into several (choose →
// all branches).
func optimisticInstr(instr xslt.Instruction) []xslt.Instruction {
	switch in := instr.(type) {
	case *xslt.Text, *xslt.MakeText, *xslt.NumberInstr:
		return []xslt.Instruction{instr}
	case *xslt.ValueOf:
		return []xslt.Instruction{&xslt.ValueOf{Select: optimisticExpr(in.Select)}}
	case *xslt.CopyOf:
		return []xslt.Instruction{&xslt.CopyOf{Select: optimisticExpr(in.Select)}}
	case *xslt.LiteralElement:
		return []xslt.Instruction{&xslt.LiteralElement{
			QName: in.QName, Attrs: in.Attrs, Body: optimisticSeq(in.Body),
		}}
	case *xslt.MakeElement:
		return []xslt.Instruction{&xslt.MakeElement{Name: in.Name, Body: optimisticSeq(in.Body)}}
	case *xslt.MakeAttribute:
		return []xslt.Instruction{&xslt.MakeAttribute{Name: in.Name, Body: optimisticSeq(in.Body)}}
	case *xslt.MakeComment:
		return []xslt.Instruction{&xslt.MakeComment{Body: optimisticSeq(in.Body)}}
	case *xslt.MakePI:
		return []xslt.Instruction{&xslt.MakePI{Name: in.Name, Body: optimisticSeq(in.Body)}}
	case *xslt.Copy:
		return []xslt.Instruction{&xslt.Copy{Body: optimisticSeq(in.Body)}}
	case *xslt.DeclareVar:
		return []xslt.Instruction{&xslt.DeclareVar{Def: optimisticVarDef(in.Def)}}
	case *xslt.ApplyTemplates:
		cp := &xslt.ApplyTemplates{
			Select:  optimisticExpr(in.Select),
			Mode:    in.Mode,
			TraceID: in.TraceID,
		}
		for _, p := range in.Params {
			cp.Params = append(cp.Params, optimisticVarDef(p))
		}
		return []xslt.Instruction{cp}
	case *xslt.CallTemplate:
		cp := &xslt.CallTemplate{Name: in.Name}
		for _, p := range in.Params {
			cp.Params = append(cp.Params, optimisticVarDef(p))
		}
		return []xslt.Instruction{cp}
	case *xslt.ForEach:
		return []xslt.Instruction{&xslt.ForEach{
			Select: optimisticExpr(in.Select),
			Body:   optimisticSeq(in.Body),
		}}
	case *xslt.If:
		// Execute unconditionally so nested apply-templates are traced.
		return []xslt.Instruction{branchBox(optimisticSeq(in.Body))}
	case *xslt.Choose:
		var out []xslt.Instruction
		for _, w := range in.Whens {
			out = append(out, branchBox(optimisticSeq(w.Body)))
		}
		if len(in.Otherwise) > 0 {
			out = append(out, branchBox(optimisticSeq(in.Otherwise)))
		}
		return out
	case *xslt.Message:
		// Keep the body (it may contain apply-templates) but never
		// terminate; the message text itself is irrelevant to the trace.
		return []xslt.Instruction{branchBox(optimisticSeq(in.Body))}
	}
	return []xslt.Instruction{instr}
}

// branchBox wraps a speculatively-executed branch body in a scratch
// element so instructions that are position-sensitive in the output
// (xsl:attribute after content, for example) cannot abort the sample run
// when several mutually-exclusive branches execute back to back.
func branchBox(body []xslt.Instruction) xslt.Instruction {
	return &xslt.LiteralElement{QName: "pe-branch", Body: body}
}

// optimisticExpr rewrites an XPath expression for the sample run: every
// value-dependent predicate becomes true(); structural predicates survive.
func optimisticExpr(e xpath.Expr) xpath.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *xpath.PathExpr:
		cp := &xpath.PathExpr{Abs: x.Abs, Start: optimisticExpr(x.Start)}
		cp.StartPreds = optimisticPreds(x.StartPreds)
		for _, s := range x.Steps {
			cp.Steps = append(cp.Steps, &xpath.Step{
				Axis: s.Axis, Test: s.Test, Preds: optimisticPreds(s.Preds),
			})
		}
		return cp
	case *xpath.BinaryExpr:
		if x.Op == xpath.OpUnion {
			return &xpath.BinaryExpr{Op: x.Op, L: optimisticExpr(x.L), R: optimisticExpr(x.R)}
		}
		return e
	case *xpath.FuncExpr:
		cp := &xpath.FuncExpr{Name: x.Name}
		for _, a := range x.Args {
			cp.Args = append(cp.Args, optimisticExpr(a))
		}
		return cp
	}
	return e
}

func optimisticPreds(preds []xpath.Expr) []xpath.Expr {
	var out []xpath.Expr
	for _, p := range preds {
		if IsStructural(p) {
			out = append(out, optimisticExpr(p))
		} else {
			out = append(out, &xpath.FuncExpr{Name: "true"})
		}
	}
	return out
}

// IsStructural reports whether an XPath expression depends only on document
// structure (element/attribute existence), never on text values or
// positions. Structural predicates can be decided on the sample document;
// everything else must be assumed true during partial evaluation (§4.3).
func IsStructural(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.PathExpr:
		if x.Start != nil && !IsStructural(x.Start) {
			return false
		}
		for _, p := range x.StartPreds {
			if !IsStructural(p) {
				return false
			}
		}
		for _, s := range x.Steps {
			if s.Test.Kind == xpath.TestText {
				return false // existence of text is value-adjacent; be safe
			}
			for _, p := range s.Preds {
				if !IsStructural(p) {
					return false
				}
			}
		}
		return true
	case *xpath.BinaryExpr:
		switch x.Op {
		case xpath.OpAnd, xpath.OpOr, xpath.OpUnion:
			return IsStructural(x.L) && IsStructural(x.R)
		}
		return false // comparisons and arithmetic depend on values
	case *xpath.FuncExpr:
		switch x.Name {
		case "not", "boolean":
			return len(x.Args) == 1 && IsStructural(x.Args[0])
		case "true", "false":
			return true
		}
		return false
	case xpath.NumberExpr:
		return false // positional predicate
	case xpath.StringExpr:
		return false
	case xpath.VarExpr:
		return false
	case *xpath.NegExpr:
		return false
	}
	return false
}

// optimisticPattern rewrites a match pattern's predicates optimistically.
// Patterns share the step representation, so predicates are replaced in a
// deep copy of each alternative.
func optimisticPattern(p *xpath.Pattern) *xpath.Pattern {
	if p == nil {
		return nil
	}
	// Re-parse the source and transform: simplest faithful deep copy.
	cp, err := xpath.ParsePattern(p.String())
	if err != nil {
		return p
	}
	for _, alt := range cp.Alternatives {
		for _, s := range alt.Steps {
			s.Preds = optimisticPreds(s.Preds)
		}
	}
	return cp
}
