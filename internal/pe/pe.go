// Package pe implements the paper's partial evaluation step (§4): the XSLT
// stylesheet is specialized against the *structural* part of the input (a
// sample document generated from the schema), producing trace-call-lists —
// which templates each <xsl:apply-templates> instruction activates for which
// context elements — and a template execution graph whose (a)cyclicity
// decides between inline and non-inline XQuery generation (§4.4).
//
// Value predicates cannot be decided from structure alone, so the sample
// run is conservative: every value-dependent predicate and conditional is
// assumed reachable ("we have to be conservative during the partial
// evaluation and assume that the result of matching pattern with a
// predicate ... is always true", §4.3). Concretely the stylesheet is
// transformed before the run: value predicates in XPath become true(),
// xsl:if bodies always execute, and every xsl:choose branch executes.
package pe

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xsltvm"
)

// CallEntry is one entry of a trace-call-list: during the sample run, the
// apply-templates instruction selected Node and activated Template (nil for
// a built-in rule).
type CallEntry struct {
	// Node is the sample node that caused the activation.
	Node *xmltree.Node
	// Kind is the node's kind (element, text, ...).
	Kind xmltree.NodeKind
	// Name is the element name ("" for non-elements).
	Name string
	// Template is the activated template; nil means built-in rule.
	Template *xslt.Template
	// Decl is the schema declaration of the element (nil for non-elements
	// or undeclared names).
	Decl *xschema.ElemDecl
	// Info carries the sample annotations (model group, cardinality,
	// recursion marker).
	Info xschema.SampleInfo
}

// Builtin reports whether the built-in rule handled the entry.
func (e CallEntry) Builtin() bool { return e.Template == nil }

// Result is the output of partial evaluation.
type Result struct {
	Schema *xschema.Schema
	Sample *xmltree.Node
	Sheet  *xslt.Stylesheet
	// Program is the instrumented (optimistic) program that produced the
	// trace; the rewriter reads trace ids from the ORIGINAL stylesheet's
	// instructions, which share numbering.
	Program *xsltvm.Program

	// CallLists maps each apply-templates trace id to its call list, in
	// activation order with duplicates (same template+name) removed.
	CallLists map[int][]CallEntry
	// RootEntries are the activations of the initial root application.
	RootEntries []CallEntry

	// Instantiated holds every template activated at least once (via
	// apply-templates or reachable call-template).
	Instantiated map[*xslt.Template]bool

	// Recursive reports a cycle in the template execution graph or a
	// recursive input schema — either forces non-inline mode (§4.4, §7.2).
	Recursive bool
	// RecursiveTemplates are the templates on execution-graph or
	// call-template cycles; partial inline mode keeps functions for these
	// and inlines everything else (§7.2 future work, implemented here).
	RecursiveTemplates map[*xslt.Template]bool
	// RecursionReason explains why Recursive was set.
	RecursionReason string

	// BuiltinOnly reports that no user template was ever activated: the
	// whole transformation is the built-in rules (§3.6, Tables 20-21).
	BuiltinOnly bool
}

// Evaluate performs partial evaluation of sheet over schema.
func Evaluate(sheet *xslt.Stylesheet, schema *xschema.Schema) (*Result, error) {
	sample, err := schema.GenerateSample(xschema.SampleOptions{})
	if err != nil {
		return nil, fmt.Errorf("pe: sample generation: %w", err)
	}

	// Unbounded call-template recursion cannot be cut by the finite sample
	// document; detect static call cycles up front and drop the cyclic
	// calls from the optimistic copy (recursion already forces non-inline
	// mode, where call-template compiles to a plain function call).
	cyclicCallees := staticCallCycles(sheet)

	// Instrumented, optimistic copy of the stylesheet. Its instructions
	// mirror the original's apply-templates order, so trace ids align.
	optimistic := optimisticSheet(sheet)
	if len(cyclicCallees) > 0 {
		dropCyclicCalls(optimistic, cyclicCallees)
	}
	prog, err := xsltvm.Compile(optimistic)
	if err != nil {
		return nil, fmt.Errorf("pe: compile: %w", err)
	}
	// Trace ids are assigned in compile order; compile the original too so
	// callers can map ids back. (The original is not executed here.)
	origProg, err := xsltvm.Compile(sheet)
	if err != nil {
		return nil, fmt.Errorf("pe: compile original: %w", err)
	}
	if len(origProg.TraceTable) != len(prog.TraceTable) {
		return nil, fmt.Errorf("pe: internal: trace tables diverge (%d vs %d)", len(origProg.TraceTable), len(prog.TraceTable))
	}

	res := &Result{
		Schema:             schema,
		Sample:             sample,
		Sheet:              sheet,
		Program:            origProg,
		CallLists:          map[int][]CallEntry{},
		Instantiated:       map[*xslt.Template]bool{},
		RecursiveTemplates: map[*xslt.Template]bool{},
	}

	// Map optimistic templates back to originals by index.
	tmplOf := func(opt *xslt.Template) *xslt.Template {
		if opt == nil {
			return nil
		}
		return sheet.Templates[opt.Index]
	}

	vm := xsltvm.New(prog)
	// The graph: node ids are template indexes; -1 is the built-in pseudo
	// node. Edges from TraceTable owners to activated templates.
	edges := map[int]map[int]bool{}
	addEdge := func(from, to int) {
		if edges[from] == nil {
			edges[from] = map[int]bool{}
		}
		edges[from][to] = true
	}

	seen := map[string]bool{} // dedupe (traceID, name/kind, template index)
	vm.Trace = func(ev xsltvm.TraceEvent) {
		orig := tmplOf(ev.Template)
		entry := CallEntry{Node: ev.Node, Kind: ev.Node.Kind, Template: orig}
		if ev.Node.Kind == xmltree.ElementNode {
			entry.Name = ev.Node.Name
			entry.Decl = schema.Lookup(ev.Node.Name)
			entry.Info = xschema.ReadSampleInfo(ev.Node)
		}
		if orig != nil {
			res.Instantiated[orig] = true
		}

		// Graph edge: owner of the apply instruction → activated template.
		from := -1
		if ev.TraceID >= 0 {
			if owner := prog.TraceTable[ev.TraceID].Owner; owner != nil {
				from = owner.Index
			}
		}
		to := -1
		if orig != nil {
			to = orig.Index
		}
		addEdge(from, to)

		key := fmt.Sprintf("%d|%v|%s|%d", ev.TraceID, ev.Node.Kind, entry.Name, to)
		if seen[key] {
			return
		}
		seen[key] = true
		if ev.TraceID < 0 {
			res.RootEntries = append(res.RootEntries, entry)
			return
		}
		res.CallLists[ev.TraceID] = append(res.CallLists[ev.TraceID], entry)
	}

	vm.MaxDepth = 256
	vm.Runtime.Optimistic = true // key() lookups assumed to match (§4.3)
	if _, err := vm.Run(sample); err != nil {
		if strings.Contains(err.Error(), "recursion deeper") {
			// Dynamic recursion the static checks missed (e.g. a template
			// re-applying to its own context node): the trace gathered so
			// far is still valid; mark the stylesheet recursive.
			res.Recursive = true
			res.RecursionReason = "sample run exceeded recursion bound"
		} else {
			return nil, fmt.Errorf("pe: sample run: %w", err)
		}
	}

	// Static edges for call-template (not traced by apply-templates).
	for _, t := range sheet.Templates {
		for _, callee := range calledTemplates(t.Body) {
			if j := templateIndexByName(sheet, callee); j >= 0 {
				addEdge(t.Index, j)
				res.Instantiated[sheet.Templates[j]] = true
			}
		}
	}

	res.BuiltinOnly = len(res.Instantiated) == 0

	if len(cyclicCallees) > 0 {
		res.Recursive = true
		res.RecursionReason = "call-template cycle through " + strings.Join(sortedKeys(cyclicCallees), ", ")
		for _, t := range sheet.Templates {
			if cyclicCallees[templateKey(t)] {
				res.RecursiveTemplates[t] = true
			}
		}
	}
	if members := cycleMembers(edges); len(members) > 0 {
		res.Recursive = true
		res.RecursionReason = fmt.Sprintf("template execution graph has a cycle (%d template(s))", len(members))
		for idx := range members {
			if idx >= 0 && idx < len(sheet.Templates) {
				res.RecursiveTemplates[sheet.Templates[idx]] = true
			}
		}
	}
	if recs := schema.RecursiveElements(); len(recs) > 0 {
		res.Recursive = true
		res.RecursionReason = "schema is recursive at " + strings.Join(recs, ", ")
	}
	return res, nil
}

func templateIndexByName(sheet *xslt.Stylesheet, name string) int {
	for _, t := range sheet.Templates {
		if t.Name == name {
			return t.Index
		}
	}
	return -1
}

// cycleMembers returns the template indexes on execution-graph cycles.
// The built-in pseudo node (-1) is excluded: a template reached from
// built-in descent can only recur through unbounded structure, which the
// separate schema-recursion check reports.
func cycleMembers(edges map[int]map[int]bool) map[int]bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[int]int{}
	members := map[int]bool{}
	var visit func(n int, stack []int)
	visit = func(n int, stack []int) {
		color[n] = grey
		stack = append(stack, n)
		var targets []int
		for m := range edges[n] {
			if m >= 0 {
				targets = append(targets, m)
			}
		}
		sort.Ints(targets)
		for _, m := range targets {
			switch color[m] {
			case white:
				visit(m, stack)
			case grey:
				for i := len(stack) - 1; i >= 0; i-- {
					members[stack[i]] = true
					if stack[i] == m {
						break
					}
				}
			}
		}
		color[n] = black
	}
	var starts []int
	for n := range edges {
		starts = append(starts, n)
	}
	sort.Ints(starts)
	for _, n := range starts {
		if n >= 0 && color[n] == white {
			visit(n, nil)
		}
	}
	return members
}

// calledTemplates lists call-template targets in an instruction tree.
func calledTemplates(body []xslt.Instruction) []string {
	var out []string
	var walk func([]xslt.Instruction)
	walk = func(instrs []xslt.Instruction) {
		for _, in := range instrs {
			switch x := in.(type) {
			case *xslt.CallTemplate:
				out = append(out, x.Name)
			case *xslt.LiteralElement:
				walk(x.Body)
			case *xslt.MakeElement:
				walk(x.Body)
			case *xslt.MakeAttribute:
				walk(x.Body)
			case *xslt.MakeComment:
				walk(x.Body)
			case *xslt.MakePI:
				walk(x.Body)
			case *xslt.ForEach:
				walk(x.Body)
			case *xslt.If:
				walk(x.Body)
			case *xslt.Choose:
				for _, w := range x.Whens {
					walk(w.Body)
				}
				walk(x.Otherwise)
			case *xslt.Copy:
				walk(x.Body)
			case *xslt.Message:
				walk(x.Body)
			case *xslt.DeclareVar:
				walk(x.Def.Body)
			}
		}
	}
	walk(body)
	return out
}

// EntriesFor returns the call list of the apply-templates instruction.
func (r *Result) EntriesFor(at *xslt.ApplyTemplates) []CallEntry {
	if at.TraceID < 0 {
		return nil
	}
	return r.CallLists[at.TraceID]
}

// Describe renders the PE result for debugging and documentation.
func (r *Result) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "partial evaluation: %d apply-templates sites, %d templates instantiated\n",
		len(r.Program.TraceTable), len(r.Instantiated))
	if r.Recursive {
		fmt.Fprintf(&sb, "recursive: %s\n", r.RecursionReason)
	}
	if r.BuiltinOnly {
		sb.WriteString("builtin-only stylesheet\n")
	}
	var ids []int
	for id := range r.CallLists {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		te := r.Program.TraceTable[id]
		sel := te.SelectSrc
		if sel == "" {
			sel = "child::node()"
		}
		fmt.Fprintf(&sb, "  apply[%d] select=%q:", id, sel)
		for _, e := range r.CallLists[id] {
			name := e.Name
			if e.Kind != xmltree.ElementNode {
				name = e.Kind.String()
			}
			if e.Builtin() {
				fmt.Fprintf(&sb, " %s→builtin", name)
			} else {
				fmt.Fprintf(&sb, " %s→{%s}", name, e.Template.String())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// staticCallCycles finds template names involved in call-template cycles.
func staticCallCycles(sheet *xslt.Stylesheet) map[string]bool {
	// Build name → callee-names edges.
	adj := map[string][]string{}
	for _, t := range sheet.Templates {
		key := templateKey(t)
		adj[key] = nil
		for _, callee := range calledTemplates(t.Body) {
			if j := templateIndexByName(sheet, callee); j >= 0 {
				adj[key] = append(adj[key], templateKey(sheet.Templates[j]))
			}
		}
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	cyclic := map[string]bool{}
	var visit func(n string, stack []string)
	visit = func(n string, stack []string) {
		color[n] = grey
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case white:
				visit(m, stack)
			case grey:
				for i := len(stack) - 1; i >= 0; i-- {
					cyclic[stack[i]] = true
					if stack[i] == m {
						break
					}
				}
			}
		}
		color[n] = black
	}
	var names []string
	for n := range adj {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if color[n] == white {
			visit(n, nil)
		}
	}
	return cyclic
}

func templateKey(t *xslt.Template) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("#%d", t.Index)
}

// dropCyclicCalls removes call-template instructions targeting templates in
// the cyclic set from the (optimistic) stylesheet, in place.
func dropCyclicCalls(sheet *xslt.Stylesheet, cyclic map[string]bool) {
	var filter func(body []xslt.Instruction) []xslt.Instruction
	filter = func(body []xslt.Instruction) []xslt.Instruction {
		var out []xslt.Instruction
		for _, in := range body {
			switch x := in.(type) {
			case *xslt.CallTemplate:
				if cyclic[x.Name] {
					continue
				}
			case *xslt.LiteralElement:
				x.Body = filter(x.Body)
			case *xslt.MakeElement:
				x.Body = filter(x.Body)
			case *xslt.MakeAttribute:
				x.Body = filter(x.Body)
			case *xslt.MakeComment:
				x.Body = filter(x.Body)
			case *xslt.MakePI:
				x.Body = filter(x.Body)
			case *xslt.ForEach:
				x.Body = filter(x.Body)
			case *xslt.If:
				x.Body = filter(x.Body)
			case *xslt.Copy:
				x.Body = filter(x.Body)
			case *xslt.Message:
				x.Body = filter(x.Body)
			case *xslt.Choose:
				for i := range x.Whens {
					x.Whens[i].Body = filter(x.Whens[i].Body)
				}
				x.Otherwise = filter(x.Otherwise)
			case *xslt.DeclareVar:
				x.Def.Body = filter(x.Def.Body)
			}
			out = append(out, in)
		}
		return out
	}
	for _, t := range sheet.Templates {
		t.Body = filter(t.Body)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
