package pe

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xtest"
)

const deptSchema = `
dept      := dname, loc, employees
employees := emp*
emp       := empno:int, ename, sal:int
`

func wrap(body string) string {
	return `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + body + `</xsl:stylesheet>`
}

func evalPE(t *testing.T, stylesheet, schema string) *Result {
	t.Helper()
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		t.Fatal(err)
	}
	s, err := xschema.ParseCompact(schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(sheet, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPaperExample1Trace checks §4.3 on the paper's stylesheet: the first
// apply-templates activates the dname/loc/employees templates; the second
// activates the emp template despite the sal > 2000 value predicate (which
// must be assumed true on the sample).
func TestPaperExample1Trace(t *testing.T) {
	res := evalPE(t, xslt.PaperStylesheet, deptSchema)

	if res.Recursive {
		t.Fatalf("example 1 should not be recursive: %s", res.RecursionReason)
	}
	if res.BuiltinOnly {
		t.Fatal("example 1 uses user templates")
	}
	if len(res.Instantiated) != 5 {
		// dept, dname, loc, employees, emp (text() never activated: the
		// schema-generated document's text lives in leaves handled by
		// value-of, but leaf elements' children ARE text nodes selected by
		// the first apply... see below).
		t.Logf("instantiated = %d", len(res.Instantiated))
	}

	// Trace id 0: <xsl:apply-templates/> inside match="dept".
	list0 := res.CallLists[0]
	names := map[string]bool{}
	for _, e := range list0 {
		if e.Kind == xmltree.ElementNode {
			names[e.Name] = true
			if e.Builtin() {
				t.Errorf("element %s fell through to builtin", e.Name)
			}
		}
	}
	for _, want := range []string{"dname", "loc", "employees"} {
		if !names[want] {
			t.Errorf("apply[0] missing activation for %s", want)
		}
	}

	// Trace id 1: select="emp[sal > 2000]" must still activate emp.
	list1 := res.CallLists[1]
	if len(list1) == 0 {
		t.Fatal("value predicate must be assumed true during PE")
	}
	foundEmp := false
	for _, e := range list1 {
		if e.Name == "emp" && !e.Builtin() && e.Template.MatchSrc == "emp" {
			foundEmp = true
			if !e.Info.Unbounded {
				t.Error("emp entry should carry the unbounded annotation")
			}
			if e.Decl == nil || e.Decl.Particle("sal") == nil {
				t.Error("emp entry should carry the schema declaration")
			}
		}
	}
	if !foundEmp {
		t.Fatalf("emp template not activated: %+v", list1)
	}

	// Root entries: the document node goes to builtin, then dept activates.
	if len(res.RootEntries) == 0 {
		t.Fatal("no root entries")
	}
	if !res.RootEntries[0].Builtin() {
		t.Fatal("document node should hit the builtin rule")
	}
}

func TestBuiltinOnlyDetection(t *testing.T) {
	res := evalPE(t, wrap(""), deptSchema)
	if !res.BuiltinOnly {
		t.Fatal("empty stylesheet should be builtin-only (paper Table 20)")
	}
	if res.Recursive {
		t.Fatal("not recursive")
	}
}

func TestRecursiveTemplateGraph(t *testing.T) {
	// A template that applies itself over a recursive schema.
	res := evalPE(t, wrap(`
		<xsl:template match="section"><s><xsl:apply-templates select="section"/></s></xsl:template>
	`), `
section := title, section*
title   := #text
`)
	if !res.Recursive {
		t.Fatal("recursive structure must force non-inline mode")
	}
	if res.RecursionReason == "" {
		t.Fatal("reason missing")
	}
}

func TestCallTemplateRecursionDetected(t *testing.T) {
	res := evalPE(t, wrap(`
		<xsl:template match="/"><xsl:call-template name="f"/></xsl:template>
		<xsl:template name="f"><xsl:call-template name="g"/></xsl:template>
		<xsl:template name="g"><xsl:call-template name="f"/></xsl:template>
	`), deptSchema)
	if !res.Recursive {
		t.Fatal("mutual call-template recursion must be detected")
	}
}

func TestNonRecursiveCallChain(t *testing.T) {
	res := evalPE(t, wrap(`
		<xsl:template match="/"><xsl:call-template name="f"/></xsl:template>
		<xsl:template name="f">leaf</xsl:template>
	`), deptSchema)
	if res.Recursive {
		t.Fatalf("linear call chain is not recursive: %s", res.RecursionReason)
	}
	// f is instantiated via call-template.
	found := false
	for tmpl := range res.Instantiated {
		if tmpl.Name == "f" {
			found = true
		}
	}
	if !found {
		t.Fatal("call-template target should count as instantiated")
	}
}

func TestDeadTemplateNotInstantiated(t *testing.T) {
	res := evalPE(t, wrap(`
		<xsl:template match="dept">D</xsl:template>
		<xsl:template match="nonexistent">DEAD</xsl:template>
	`), deptSchema)
	for tmpl := range res.Instantiated {
		if tmpl.MatchSrc == "nonexistent" {
			t.Fatal("template for absent element must not be instantiated (§3.7)")
		}
	}
	if res.BuiltinOnly {
		t.Fatal("dept template was instantiated")
	}
}

func TestChooseBranchesAllTraced(t *testing.T) {
	// Both branches contain apply-templates with different modes; both must
	// appear in the trace even though only one would run dynamically.
	res := evalPE(t, wrap(`
		<xsl:template match="dept">
			<xsl:choose>
				<xsl:when test="dname = 'X'"><xsl:apply-templates select="dname" mode="a"/></xsl:when>
				<xsl:otherwise><xsl:apply-templates select="loc" mode="b"/></xsl:otherwise>
			</xsl:choose>
		</xsl:template>
		<xsl:template match="dname" mode="a">A</xsl:template>
		<xsl:template match="loc" mode="b">B</xsl:template>
	`), deptSchema)
	instantiatedModes := map[string]bool{}
	for tmpl := range res.Instantiated {
		instantiatedModes[tmpl.Mode] = true
	}
	if !instantiatedModes["a"] || !instantiatedModes["b"] {
		t.Fatalf("both choose branches must be traced: %v", instantiatedModes)
	}
}

func TestIfBodyTraced(t *testing.T) {
	res := evalPE(t, wrap(`
		<xsl:template match="dept">
			<xsl:if test="dname = 'NEVER ON SAMPLE'"><xsl:apply-templates select="loc"/></xsl:if>
		</xsl:template>
		<xsl:template match="loc">L</xsl:template>
	`), deptSchema)
	found := false
	for tmpl := range res.Instantiated {
		if tmpl.MatchSrc == "loc" {
			found = true
		}
	}
	if !found {
		t.Fatal("xsl:if body must be traced unconditionally")
	}
}

func TestIsStructural(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"empno", true},
		{"emp/empno", true},
		{"@id", true},
		{"not(empno)", true},
		{"empno | ename", true},
		{"sal > 2000", false},
		{". = 3456", false},
		{"position() = 1", false},
		{"2", false},
		{"'str'", false},
		{"$var", false},
		{"count(emp) > 1", false},
		{"text()", false},
	}
	for _, tc := range cases {
		e := xtest.XPath(t, tc.expr)
		if got := IsStructural(e); got != tc.want {
			t.Errorf("IsStructural(%q) = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestDescribeOutput(t *testing.T) {
	res := evalPE(t, xslt.PaperStylesheet, deptSchema)
	desc := res.Describe()
	for _, frag := range []string{"apply[0]", "apply[1]", "emp"} {
		if !strings.Contains(desc, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, desc)
		}
	}
}

func TestEntriesFor(t *testing.T) {
	res := evalPE(t, xslt.PaperStylesheet, deptSchema)
	// Find the apply-templates instruction with select inside the
	// employees template.
	var target *xslt.ApplyTemplates
	for _, tmpl := range res.Sheet.Templates {
		if tmpl.MatchSrc != "employees" {
			continue
		}
		var walk func([]xslt.Instruction)
		walk = func(body []xslt.Instruction) {
			for _, in := range body {
				switch x := in.(type) {
				case *xslt.ApplyTemplates:
					target = x
				case *xslt.LiteralElement:
					walk(x.Body)
				}
			}
		}
		walk(tmpl.Body)
	}
	if target == nil {
		t.Fatal("apply-templates not found in employees template")
	}
	entries := res.EntriesFor(target)
	if len(entries) == 0 || entries[0].Name != "emp" {
		t.Fatalf("EntriesFor wrong: %+v", entries)
	}
}

func TestSortKeysDoNotBreakPE(t *testing.T) {
	res := evalPE(t, wrap(`
		<xsl:template match="employees"><xsl:apply-templates select="emp"><xsl:sort select="sal" data-type="number"/></xsl:apply-templates></xsl:template>
		<xsl:template match="emp">E</xsl:template>
	`), deptSchema)
	found := false
	for tmpl := range res.Instantiated {
		if tmpl.MatchSrc == "emp" {
			found = true
		}
	}
	if !found {
		t.Fatal("sorted apply-templates must still trace")
	}
}

// TestKeyFunctionOptimistic: key() lookups during the sample run return all
// pattern-matching nodes so downstream templates still trace (§4.3's
// conservative stance extended to keys).
func TestKeyFunctionOptimistic(t *testing.T) {
	res := evalPE(t, wrap(`
		<xsl:key name="byname" match="emp" use="ename"/>
		<xsl:template match="dept"><xsl:apply-templates select="key('byname', 'NEVER-ON-SAMPLE')"/></xsl:template>
		<xsl:template match="emp"><e/></xsl:template>
	`), deptSchema)
	found := false
	for tmpl := range res.Instantiated {
		if tmpl.MatchSrc == "emp" {
			found = true
		}
	}
	if !found {
		t.Fatal("key()-selected templates must trace during PE")
	}
}
