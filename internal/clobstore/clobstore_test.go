package clobstore

import (
	"fmt"
	"testing"

	"repro/internal/relstore"
)

func fill(t *testing.T, n int) *DocStore {
	t.Helper()
	s := New()
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf("<dept><no>%d</no><emps><emp><sal>%d</sal></emp><emp><sal>%d</sal></emp></emps></dept>",
			i, 1000+i, 2000+i)
		if _, err := s.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddAndAccess(t *testing.T) {
	s := fill(t, 5)
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, err := s.Add("<bad"); err == nil {
		t.Fatal("malformed doc should be rejected")
	}
	doc, err := s.ParseDoc(2)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DocumentElement().FirstChildElement("no").StringValue() != "2" {
		t.Fatal("wrong doc")
	}
}

func TestTreeCaching(t *testing.T) {
	s := fill(t, 3)
	before := s.Parses
	t1, err := s.Tree(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := s.Tree(1)
	if t1 != t2 {
		t.Fatal("tree storage must cache the DOM")
	}
	if s.Parses != before+1 {
		t.Fatalf("tree access should parse once, parsed %d", s.Parses-before)
	}
	// CLOB access parses every time.
	_, _ = s.ParseDoc(1)
	_, _ = s.ParseDoc(1)
	if s.Parses != before+3 {
		t.Fatalf("CLOB access should parse per call: %d", s.Parses-before)
	}
}

func TestPathIndexSelect(t *testing.T) {
	s := fill(t, 100)
	if err := s.CreatePathIndex("/dept/no"); err != nil {
		t.Fatal(err)
	}
	parsesBefore := s.Parses

	ids, usedIndex, err := s.SelectDocs("/dept/no", relstore.Pred{Op: relstore.CmpEq, Val: int64(42)})
	if err != nil {
		t.Fatal(err)
	}
	if !usedIndex {
		t.Fatal("index should be used")
	}
	if len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("ids = %v", ids)
	}
	if s.Parses != parsesBefore {
		t.Fatal("indexed selection must not parse documents")
	}

	// Range predicate.
	ids, _, err = s.SelectDocs("/dept/no", relstore.Pred{Op: relstore.CmpGe, Val: int64(97)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("range ids = %v", ids)
	}

	// Unindexed path: full scan parses everything.
	ids, usedIndex, err = s.SelectDocs("/dept/emps/emp/sal", relstore.Pred{Op: relstore.CmpGt, Val: int64(2095)})
	if err != nil {
		t.Fatal(err)
	}
	if usedIndex {
		t.Fatal("no index on sal path")
	}
	if len(ids) != 4 { // sal 2096..2099
		t.Fatalf("scan ids = %v", ids)
	}
	if s.Parses == parsesBefore {
		t.Fatal("full scan must parse")
	}
}

func TestMultiValuePathIndex(t *testing.T) {
	s := fill(t, 10)
	if err := s.CreatePathIndex("/dept/emps/emp/sal"); err != nil {
		t.Fatal(err)
	}
	// Doc i has sals 1000+i and 2000+i; select docs with any sal < 1003.
	ids, used, err := s.SelectDocs("/dept/emps/emp/sal", relstore.Pred{Op: relstore.CmpLt, Val: int64(1003)})
	if err != nil || !used {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	// Index stays correct for documents added after creation.
	if _, err := s.Add("<dept><no>99</no><emps><emp><sal>1</sal></emp></emps></dept>"); err != nil {
		t.Fatal(err)
	}
	ids, _, _ = s.SelectDocs("/dept/emps/emp/sal", relstore.Pred{Op: relstore.CmpEq, Val: int64(1)})
	if len(ids) != 1 || ids[0] != 10 {
		t.Fatalf("post-add index wrong: %v", ids)
	}
}

func TestCreatePathIndexErrors(t *testing.T) {
	s := fill(t, 2)
	if err := s.CreatePathIndex("relative/path"); err == nil {
		t.Fatal("relative path should be rejected")
	}
	if err := s.CreatePathIndex("/dept/no"); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := s.CreatePathIndex("/dept/no"); err != nil {
		t.Fatal(err)
	}
}

func TestStringIndexKeys(t *testing.T) {
	s := New()
	_, _ = s.Add("<r><k>alpha</k></r>")
	_, _ = s.Add("<r><k>beta</k></r>")
	if err := s.CreatePathIndex("/r/k"); err != nil {
		t.Fatal(err)
	}
	ids, used, err := s.SelectDocs("/r/k", relstore.Pred{Op: relstore.CmpEq, Val: "beta"})
	if err != nil || !used || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("string key select: %v %v %v", ids, used, err)
	}
}
