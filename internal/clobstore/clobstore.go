// Package clobstore implements the alternative XMLType storage models the
// paper's §7.4 proposes to study: CLOB storage (documents kept as
// serialized text, parsed on access) with an optional path/value index, and
// tree storage (documents kept pre-parsed). Together with the
// object-relational storage of internal/sqlxml, these are the three
// physical models whose XSLT cost the storage ablation benchmark compares.
package clobstore

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/faultpoint"
	"repro/internal/relstore"
	"repro/internal/xmltree"
)

// DocStore holds a collection of XMLType documents.
type DocStore struct {
	docs []string
	// trees caches parsed documents (tree storage); nil entries are
	// not yet parsed.
	trees []*xmltree.Node
	// pathIndexes maps a slash path ("/dept/employees/emp/sal") to a
	// B-tree of leaf values → document ids.
	pathIndexes map[string]*relstore.BTree

	// Parses counts on-demand document parses (the CLOB storage cost).
	Parses int64
}

// New returns an empty store.
func New() *DocStore {
	return &DocStore{pathIndexes: map[string]*relstore.BTree{}}
}

// Add validates and stores one document, returning its id.
func (s *DocStore) Add(xmlText string) (int, error) {
	if _, err := xmltree.Parse(xmlText); err != nil {
		return 0, fmt.Errorf("clobstore: %w", err)
	}
	id := len(s.docs)
	s.docs = append(s.docs, xmlText)
	s.trees = append(s.trees, nil)
	// Maintain existing indexes.
	for path, idx := range s.pathIndexes {
		doc, err := xmltree.Parse(xmlText)
		if err != nil {
			return 0, err
		}
		indexDoc(idx, path, doc, id)
	}
	return id, nil
}

// Len reports the number of stored documents.
func (s *DocStore) Len() int { return len(s.docs) }

// Text returns the serialized form of document id (CLOB access).
func (s *DocStore) Text(id int) string { return s.docs[id] }

// ParseDoc parses document id afresh — the CLOB storage access path.
func (s *DocStore) ParseDoc(id int) (*xmltree.Node, error) {
	if err := faultpoint.Hit("clobstore.parse"); err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.Parses, 1)
	return xmltree.Parse(s.docs[id])
}

// Tree returns the cached DOM of document id, parsing once — the tree
// storage access path.
func (s *DocStore) Tree(id int) (*xmltree.Node, error) {
	if s.trees[id] == nil {
		doc, err := s.ParseDoc(id)
		if err != nil {
			return nil, err
		}
		s.trees[id] = doc
	}
	return s.trees[id], nil
}

// CreatePathIndex builds a path/value index over the leaf values at the
// given slash path (e.g. "/table/row/id"). Numeric leaf values index as
// int64 so range predicates compare numerically.
func (s *DocStore) CreatePathIndex(path string) error {
	if !strings.HasPrefix(path, "/") {
		return fmt.Errorf("clobstore: path %q must be absolute", path)
	}
	if _, dup := s.pathIndexes[path]; dup {
		return nil
	}
	idx := relstore.NewBTree()
	for id := range s.docs {
		doc, err := s.ParseDoc(id)
		if err != nil {
			return err
		}
		indexDoc(idx, path, doc, id)
	}
	s.pathIndexes[path] = idx
	return nil
}

// indexDoc adds every leaf value at path in doc to idx under docID.
func indexDoc(idx *relstore.BTree, path string, doc *xmltree.Node, docID int) {
	for _, leaf := range nodesAtPath(doc, path) {
		idx.Insert(indexKey(leaf.StringValue()), docID)
	}
}

// indexKey types a leaf value: integers index numerically.
func indexKey(v string) relstore.Value {
	if n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil {
		return n
	}
	return v
}

// nodesAtPath walks a simple child path.
func nodesAtPath(doc *xmltree.Node, path string) []*xmltree.Node {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	current := []*xmltree.Node{doc}
	for _, name := range parts {
		var next []*xmltree.Node
		for _, n := range current {
			next = append(next, n.ChildElements(name)...)
		}
		current = next
		if len(current) == 0 {
			break
		}
	}
	return current
}

// SelectDocs returns the ids of documents containing a value at path that
// satisfies pred (op against pred.Val; pred.Col is ignored). With an index
// on the path this is a B-tree range; otherwise every document is parsed
// and scanned.
func (s *DocStore) SelectDocs(path string, pred relstore.Pred) ([]int, bool, error) {
	if idx, ok := s.pathIndexes[path]; ok && pred.Op != relstore.CmpNe {
		lo, hi := bounds(pred)
		seen := map[int]bool{}
		var out []int
		idx.Range(lo, hi, func(_ relstore.Value, rows []int) bool {
			for _, id := range rows {
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
			return true
		})
		sortInts(out)
		return out, true, nil
	}
	// Full scan: parse everything.
	var out []int
	for id := range s.docs {
		doc, err := s.ParseDoc(id)
		if err != nil {
			return nil, false, err
		}
		for _, leaf := range nodesAtPath(doc, path) {
			if pred.Matches(indexKey(leaf.StringValue())) {
				out = append(out, id)
				break
			}
		}
	}
	return out, false, nil
}

func bounds(p relstore.Pred) (lo, hi relstore.Bound) {
	lo, hi = relstore.UnboundedBound, relstore.UnboundedBound
	switch p.Op {
	case relstore.CmpEq:
		lo = relstore.Bound{Value: p.Val, Inclusive: true}
		hi = lo
	case relstore.CmpLt:
		hi = relstore.Bound{Value: p.Val}
	case relstore.CmpLe:
		hi = relstore.Bound{Value: p.Val, Inclusive: true}
	case relstore.CmpGt:
		lo = relstore.Bound{Value: p.Val}
	case relstore.CmpGe:
		lo = relstore.Bound{Value: p.Val, Inclusive: true}
	}
	return lo, hi
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
