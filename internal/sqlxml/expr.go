// Package sqlxml implements the SQL/XML publishing layer: the standard
// generation functions (XMLElement, XMLAttributes, XMLAgg, XMLConcat, plus
// scalar aggregates) as an operator tree, XMLType views over relational
// tables (paper Table 3), and executable SQL/XML queries (paper Tables 7
// and 11) that pick B-tree access paths through internal/relstore.
package sqlxml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/governor"
	"repro/internal/relstore"
	"repro/internal/xmltree"
)

// XMLExpr produces XML content from one row of a driving table.
type XMLExpr interface {
	// SQL renders the expression in SQL/XML syntax for EXPLAIN output and
	// documentation golden tests.
	SQL() string
}

// Element is XMLElement(name, attrs..., children...).
type Element struct {
	Name     string
	Attrs    []Attr
	Children []XMLExpr
}

// Attr is one XMLAttributes entry; the value is a column reference or
// literal.
type Attr struct {
	Name  string
	Value XMLExpr // Column or Literal
}

// Column emits the row's column value as text content.
type Column struct{ Name string }

// Literal emits constant text.
type Literal struct{ Text string }

// Concat is XMLConcat(items...): the children concatenated.
type Concat struct{ Items []XMLExpr }

// Agg is XMLAgg over a correlated scalar subquery: for each matching row of
// the inner table, Body is constructed; results concatenate in order.
type Agg struct{ Sub *SubQuery }

// ScalarAgg is a SQL aggregate (COUNT/SUM/AVG/MIN/MAX) over a correlated
// subquery, emitted as text content.
type ScalarAgg struct {
	Fn  string // "count", "sum", "avg", "min", "max"
	Col string // aggregated column ("" for count(*))
	Sub *SubQuery
}

// Cond is a conditional constructor (SQL CASE WHEN over the current row):
// when every predicate holds for the row, Then is constructed, else Else.
type Cond struct {
	Preds []relstore.Pred
	Then  XMLExpr
	Else  XMLExpr // may be nil
}

// SQL renders the conditional as CASE WHEN.
func (c *Cond) SQL() string {
	var conds []string
	for _, p := range c.Preds {
		conds = append(conds, strings.ToUpper(p.String()))
	}
	out := "CASE WHEN " + strings.Join(conds, " AND ") + " THEN " + c.Then.SQL()
	if c.Else != nil {
		out += " ELSE " + c.Else.SQL()
	}
	return out + " END"
}

// SubQuery is a correlated subquery over an inner table.
type SubQuery struct {
	Table string
	// Correlation predicate inner.CorrInner = outer.CorrOuter; both empty
	// for an uncorrelated subquery.
	CorrInner string
	CorrOuter string
	// Where holds additional constant predicates (candidates for index
	// access).
	Where []relstore.Pred
	// OrderBy optionally orders inner rows by a column.
	OrderBy    string
	Descending bool
	// Body is evaluated per inner row (for Agg).
	Body XMLExpr
}

// SQL renders the element constructor.
func (e *Element) SQL() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("%q", e.Name))
	if len(e.Attrs) > 0 {
		var as []string
		for _, a := range e.Attrs {
			as = append(as, fmt.Sprintf("%s AS %q", a.Value.SQL(), a.Name))
		}
		parts = append(parts, "XMLAttributes("+strings.Join(as, ", ")+")")
	}
	for _, c := range e.Children {
		parts = append(parts, c.SQL())
	}
	return "XMLElement(" + strings.Join(parts, ", ") + ")"
}

// SQL renders the column reference.
func (c *Column) SQL() string { return strings.ToUpper(c.Name) }

// SQL renders the literal.
func (l *Literal) SQL() string { return "'" + strings.ReplaceAll(l.Text, "'", "''") + "'" }

// SQL renders XMLConcat.
func (c *Concat) SQL() string {
	parts := make([]string, len(c.Items))
	for i, it := range c.Items {
		parts[i] = it.SQL()
	}
	return "XMLConcat(" + strings.Join(parts, ", ") + ")"
}

// SQL renders the correlated XMLAgg subquery.
func (a *Agg) SQL() string {
	return "(SELECT XMLAgg(" + a.Sub.Body.SQL() + ")" + a.Sub.fromWhereSQL() + ")"
}

// SQL renders the scalar aggregate subquery.
func (s *ScalarAgg) SQL() string {
	col := "*"
	if s.Col != "" {
		col = strings.ToUpper(s.Col)
	}
	return "(SELECT " + strings.ToUpper(s.Fn) + "(" + col + ")" + s.Sub.fromWhereSQL() + ")"
}

func (q *SubQuery) fromWhereSQL() string {
	var sb strings.Builder
	sb.WriteString(" FROM " + strings.ToUpper(q.Table))
	var conds []string
	for _, p := range q.Where {
		conds = append(conds, strings.ToUpper(p.String()))
	}
	if q.CorrInner != "" {
		conds = append(conds, strings.ToUpper(q.CorrInner)+" = OUTER."+strings.ToUpper(q.CorrOuter))
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if q.OrderBy != "" {
		sb.WriteString(" ORDER BY " + strings.ToUpper(q.OrderBy))
		if q.Descending {
			sb.WriteString(" DESC")
		}
	}
	return sb.String()
}

// evalContext carries the execution state while constructing XML for a row.
// Every table read — driving row, correlated subquery, scalar aggregate —
// goes through one pinned database snapshot, so a whole run observes a
// single committed state no matter how many inserts land mid-run.
type evalContext struct {
	snap  *relstore.Snapshot
	stats *relstore.Stats
	// gov, when non-nil, bounds the construction: deep Agg nests and wide
	// scans abort promptly on cancellation or budget exhaustion.
	gov *governor.G

	// Pinned driving row (setRow): the batch engine hands the cursor row
	// references straight from the snapshot, so cell reads on the current
	// driving row skip even the snapshot's bounds check.
	curTable *relstore.TableSnap
	curRow   []relstore.Value
	curID    int
}

// setRow pins the driving row the next evalInto constructs from. row may be
// nil to unpin (reads fall back to the snapshot's Value path).
func (ec *evalContext) setRow(ts *relstore.TableSnap, id int, row []relstore.Value) {
	ec.curTable, ec.curID, ec.curRow = ts, id, row
}

// cell reads one column of (ts, id), via the pinned row when it matches.
func (ec *evalContext) cell(ts *relstore.TableSnap, id int, col string) relstore.Value {
	if ec.curRow != nil && ts == ec.curTable && id == ec.curID {
		if ci := ts.ColIndex(col); ci >= 0 && ci < len(ec.curRow) {
			return ec.curRow[ci]
		}
		return nil
	}
	return ts.Value(id, col)
}

// evalInto appends the XML produced by expr for (table,rowID) to parent.
func (ec *evalContext) evalInto(parent *xmltree.Node, expr XMLExpr, table *relstore.TableSnap, rowID int) error {
	if err := ec.gov.Tick(); err != nil {
		return err
	}
	switch e := expr.(type) {
	case *Literal:
		appendText(parent, e.Text)
		return nil
	case *Column:
		v := ec.cell(table, rowID, e.Name)
		if v != nil {
			appendText(parent, valueText(v))
		}
		return nil
	case *Element:
		el := xmltree.NewElement(e.Name)
		for _, a := range e.Attrs {
			val, err := ec.scalarText(a.Value, table, rowID)
			if err != nil {
				return err
			}
			el.SetAttr(a.Name, val)
		}
		for _, c := range e.Children {
			if err := ec.evalInto(el, c, table, rowID); err != nil {
				return err
			}
		}
		el.Parent = parent
		parent.Children = append(parent.Children, el)
		return nil
	case *Concat:
		for _, it := range e.Items {
			if err := ec.evalInto(parent, it, table, rowID); err != nil {
				return err
			}
		}
		return nil
	case *Agg:
		inner, ids, err := ec.subqueryRows(e.Sub, table, rowID)
		if err != nil {
			return err
		}
		for _, id := range ids {
			if err := ec.evalInto(parent, e.Sub.Body, inner, id); err != nil {
				return err
			}
		}
		return nil
	case *ScalarAgg:
		inner, ids, err := ec.subqueryRows(e.Sub, table, rowID)
		if err != nil {
			return err
		}
		appendText(parent, scalarAggText(e, inner, ids))
		return nil
	case *Cond:
		holds := true
		for _, p := range e.Preds {
			if !p.Matches(ec.cell(table, rowID, p.Col)) {
				holds = false
				break
			}
		}
		if holds {
			return ec.evalInto(parent, e.Then, table, rowID)
		}
		if e.Else != nil {
			return ec.evalInto(parent, e.Else, table, rowID)
		}
		return nil
	}
	return fmt.Errorf("sqlxml: unhandled expression %T", expr)
}

func scalarAggText(e *ScalarAgg, inner *relstore.TableSnap, ids []int) string {
	switch e.Fn {
	case "count":
		return fmt.Sprintf("%d", len(ids))
	default:
		var total float64
		var count int
		var best relstore.Value
		for _, id := range ids {
			v := inner.Value(id, e.Col)
			if v == nil {
				continue
			}
			count++
			total += toF(v)
			if best == nil ||
				(e.Fn == "min" && relstore.CompareValues(v, best) < 0) ||
				(e.Fn == "max" && relstore.CompareValues(v, best) > 0) {
				best = v
			}
		}
		switch e.Fn {
		case "sum":
			return trimFloat(total)
		case "avg":
			if count == 0 {
				return ""
			}
			return trimFloat(total / float64(count))
		case "min", "max":
			if best == nil {
				return ""
			}
			return valueText(best)
		}
	}
	return ""
}

func toF(v relstore.Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	case string:
		f, _ := strconv.ParseFloat(strings.TrimSpace(x), 64)
		return f
	}
	return 0
}

func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// scalarText evaluates a scalar-producing expression (Column, Literal,
// ScalarAgg, or a Concat of those) to a string.
func (ec *evalContext) scalarText(expr XMLExpr, table *relstore.TableSnap, rowID int) (string, error) {
	switch e := expr.(type) {
	case *Literal:
		return e.Text, nil
	case *Column:
		return valueText(ec.cell(table, rowID, e.Name)), nil
	case *ScalarAgg:
		inner, ids, err := ec.subqueryRows(e.Sub, table, rowID)
		if err != nil {
			return "", err
		}
		return scalarAggText(e, inner, ids), nil
	case *Concat:
		var sb strings.Builder
		for _, it := range e.Items {
			s, err := ec.scalarText(it, table, rowID)
			if err != nil {
				return "", err
			}
			sb.WriteString(s)
		}
		return sb.String(), nil
	}
	return "", fmt.Errorf("sqlxml: attribute value must be scalar, got %T", expr)
}

// subqueryRows plans and runs the subquery for one outer row, returning the
// pinned inner table and the selected row ids (ordered). The inner scan
// reads the run's snapshot, so a subquery re-evaluated per outer row always
// sees the same inner rows.
func (ec *evalContext) subqueryRows(sub *SubQuery, outer *relstore.TableSnap, outerRow int) (*relstore.TableSnap, []int, error) {
	inner := ec.snap.Table(sub.Table)
	if inner == nil {
		return nil, nil, fmt.Errorf("sqlxml: unknown table %q", sub.Table)
	}
	preds := append([]relstore.Pred{}, sub.Where...)
	if sub.CorrInner != "" {
		ov := ec.cell(outer, outerRow, sub.CorrOuter)
		preds = append(preds, relstore.Pred{Col: sub.CorrInner, Op: relstore.CmpEq, Val: ov})
	}
	it := relstore.AccessPathBatchAt(inner, preds, ec.stats, ec.gov)
	var ids []int
	batch := relstore.GetBatch(0)
	for {
		n, ok := it.NextBatch(batch)
		if !ok {
			break
		}
		ids = append(ids, batch.IDs[:n]...)
	}
	relstore.PutBatch(batch)
	if err := it.Err(); err != nil {
		return nil, nil, err
	}
	if sub.OrderBy != "" {
		sortByCol(inner, ids, sub.OrderBy, sub.Descending)
	}
	return inner, ids, nil
}

func appendText(parent *xmltree.Node, data string) {
	if data == "" {
		return
	}
	if n := len(parent.Children); n > 0 && parent.Children[n-1].Kind == xmltree.TextNode {
		parent.Children[n-1].Data += data
		return
	}
	t := xmltree.NewText(data)
	t.Parent = parent
	parent.Children = append(parent.Children, t)
}

func valueText(v relstore.Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return trimFloat(x)
	}
	return fmt.Sprint(v)
}

func sortByCol(t *relstore.TableSnap, ids []int, col string, desc bool) {
	lessAsc := func(a, b int) bool {
		return relstore.CompareValues(t.Value(a, col), t.Value(b, col)) < 0
	}
	sort.SliceStable(ids, func(i, j int) bool {
		if desc {
			return lessAsc(ids[j], ids[i])
		}
		return lessAsc(ids[i], ids[j])
	})
}
