package sqlxml

import (
	"strings"
	"testing"

	"repro/internal/relstore"
	"repro/internal/xschema"
)

func setup(t *testing.T) (*relstore.DB, *Executor) {
	t.Helper()
	db := relstore.NewDB()
	if err := SetupDeptEmp(db); err != nil {
		t.Fatal(err)
	}
	return db, NewExecutor(db)
}

func nows(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	return strings.ReplaceAll(s, "> <", "><")
}

// TestDeptEmpView reproduces paper Table 4: the two XMLType instances the
// dept_emp view generates.
func TestDeptEmpView(t *testing.T) {
	_, ex := setup(t)
	docs, err := ex.MaterializeView(DeptEmpView())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("rows = %d", len(docs))
	}
	want1 := `<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc><employees>` +
		`<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>` +
		`<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>` +
		`</employees></dept>`
	got1 := nows(docs[0].String())
	got1 = strings.TrimPrefix(got1, `<?xml version="1.0"?>`)
	if got1 != want1 {
		t.Fatalf("row 1:\ngot:  %s\nwant: %s", got1, want1)
	}
	want2 := `<dept><dname>OPERATIONS</dname><loc>BOSTON</loc><employees>` +
		`<emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp>` +
		`</employees></dept>`
	got2 := strings.TrimPrefix(nows(docs[1].String()), `<?xml version="1.0"?>`)
	if got2 != want2 {
		t.Fatalf("row 2:\ngot:  %s\nwant: %s", got2, want2)
	}
}

func TestMaterializeRow(t *testing.T) {
	_, ex := setup(t)
	doc, err := ex.MaterializeRow(DeptEmpView(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.String(), "OPERATIONS") {
		t.Fatal("row 1 should be OPERATIONS")
	}
}

func TestViewSQLRendering(t *testing.T) {
	sql := DeptEmpView().SQL()
	for _, frag := range []string{
		"CREATE VIEW dept_emp",
		`XMLElement("dept"`,
		`XMLElement("dname", DNAME)`,
		"SELECT XMLAgg(",
		"FROM EMP",
		"DEPTNO = OUTER.DEPTNO",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("view SQL missing %q:\n%s", frag, sql)
		}
	}
}

// TestExample1FinalQuery executes the paper's Table 7 plan — the fully
// rewritten SQL/XML query — and checks it produces the Table 6 content.
func TestExample1FinalQuery(t *testing.T) {
	db, ex := setup(t)
	if err := db.Table("emp").CreateIndex("sal"); err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Table: "dept",
		Body: &Concat{Items: []XMLExpr{
			&Element{Name: "H1", Children: []XMLExpr{&Literal{Text: "HIGHLY PAID DEPT EMPLOYEES"}}},
			&Element{Name: "H2", Children: []XMLExpr{&Literal{Text: "Department name: "}, &Column{Name: "dname"}}},
			&Element{Name: "H2", Children: []XMLExpr{&Literal{Text: "Department location: "}, &Column{Name: "loc"}}},
			&Element{Name: "H2", Children: []XMLExpr{&Literal{Text: "Employees Table"}}},
			&Element{Name: "table",
				Attrs: []Attr{{Name: "border", Value: &Literal{Text: "2"}}},
				Children: []XMLExpr{
					&Element{Name: "td", Children: []XMLExpr{&Element{Name: "b", Children: []XMLExpr{&Literal{Text: "EmpNo"}}}}},
					&Element{Name: "td", Children: []XMLExpr{&Element{Name: "b", Children: []XMLExpr{&Literal{Text: "Name"}}}}},
					&Element{Name: "td", Children: []XMLExpr{&Element{Name: "b", Children: []XMLExpr{&Literal{Text: "Weekly Salary"}}}}},
					&Agg{Sub: &SubQuery{
						Table:     "emp",
						CorrInner: "deptno",
						CorrOuter: "deptno",
						Where:     []relstore.Pred{{Col: "sal", Op: relstore.CmpGt, Val: int64(2000)}},
						Body: &Element{Name: "tr", Children: []XMLExpr{
							&Element{Name: "td", Children: []XMLExpr{&Column{Name: "empno"}}},
							&Element{Name: "td", Children: []XMLExpr{&Column{Name: "ename"}}},
							&Element{Name: "td", Children: []XMLExpr{&Column{Name: "sal"}}},
						}},
					}},
				}},
		}},
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("result rows = %d", len(docs))
	}
	got := nows(docs[0].String())
	if !strings.Contains(got, "<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>") {
		t.Fatalf("CLARK row missing: %s", got)
	}
	if strings.Contains(got, "MILLER") {
		t.Fatal("MILLER (1300) must be filtered by sal > 2000")
	}
	if !strings.Contains(nows(docs[1].String()), "<tr><td>7954</td><td>SMITH</td><td>4900</td></tr>") {
		t.Fatal("SMITH row missing")
	}
	// The generated SQL should look like Table 7.
	sql := q.SQL()
	for _, frag := range []string{"XMLConcat(", `XMLElement("H1"`, "SAL > 2000"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("query SQL missing %q", frag)
		}
	}
}

func TestExplainShowsIndexUse(t *testing.T) {
	db, ex := setup(t)
	q := &Query{
		Table: "dept",
		Body: &Agg{Sub: &SubQuery{
			Table: "emp", CorrInner: "deptno", CorrOuter: "deptno",
			Where: []relstore.Pred{{Col: "sal", Op: relstore.CmpGt, Val: int64(2000)}},
			Body:  &Element{Name: "e", Children: []XMLExpr{&Column{Name: "ename"}}},
		}},
	}
	before := ex.ExplainQuery(q)
	if !strings.Contains(before, "TABLE SCAN emp") {
		t.Fatalf("expected emp scan before indexing:\n%s", before)
	}
	_ = db.Table("emp").CreateIndex("sal")
	after := ex.ExplainQuery(q)
	if !strings.Contains(after, "INDEX RANGE SCAN emp(sal)") {
		t.Fatalf("expected index scan after indexing:\n%s", after)
	}
}

func TestScalarAggregates(t *testing.T) {
	_, ex := setup(t)
	q := &Query{
		Table: "dept",
		Body: &Element{Name: "stats", Children: []XMLExpr{
			&Element{Name: "n", Children: []XMLExpr{
				&ScalarAgg{Fn: "count", Sub: &SubQuery{Table: "emp", CorrInner: "deptno", CorrOuter: "deptno"}},
			}},
			&Element{Name: "total", Children: []XMLExpr{
				&ScalarAgg{Fn: "sum", Col: "sal", Sub: &SubQuery{Table: "emp", CorrInner: "deptno", CorrOuter: "deptno"}},
			}},
			&Element{Name: "top", Children: []XMLExpr{
				&ScalarAgg{Fn: "max", Col: "sal", Sub: &SubQuery{Table: "emp", CorrInner: "deptno", CorrOuter: "deptno"}},
			}},
			&Element{Name: "mean", Children: []XMLExpr{
				&ScalarAgg{Fn: "avg", Col: "sal", Sub: &SubQuery{Table: "emp", CorrInner: "deptno", CorrOuter: "deptno"}},
			}},
		}},
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got := nows(docs[0].String())
	want := `<stats><n>2</n><total>3750</total><top>2450</top><mean>1875</mean></stats>`
	if !strings.Contains(got, want) {
		t.Fatalf("aggregates:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestOrderBySubquery(t *testing.T) {
	_, ex := setup(t)
	q := &Query{
		Table: "dept",
		Where: []relstore.Pred{{Col: "deptno", Op: relstore.CmpEq, Val: int64(10)}},
		Body: &Agg{Sub: &SubQuery{
			Table: "emp", CorrInner: "deptno", CorrOuter: "deptno",
			OrderBy: "sal", Descending: true,
			Body: &Element{Name: "e", Children: []XMLExpr{&Column{Name: "ename"}}},
		}},
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got := nows(docs[0].String())
	if !strings.Contains(got, "<e>CLARK</e><e>MILLER</e>") {
		t.Fatalf("order by desc wrong: %s", got)
	}
}

// TestDeriveSchema checks §3.2: structural information derived from the
// relational view definition.
func TestDeriveSchema(t *testing.T) {
	_, ex := setup(t)
	s, err := ex.DeriveSchema(DeptEmpView())
	if err != nil {
		t.Fatal(err)
	}
	if s.Root.Name != "dept" {
		t.Fatalf("root = %q", s.Root.Name)
	}
	dept := s.Lookup("dept")
	if dept.Group != xschema.GroupSeq || len(dept.Children) != 3 {
		t.Fatalf("dept decl wrong: %v %d", dept.Group, len(dept.Children))
	}
	// dname appears exactly once.
	dname := dept.Particle("dname")
	if dname == nil || dname.Repeating() {
		t.Fatal("dname cardinality wrong")
	}
	// emp repeats (XMLAgg).
	emp := s.Lookup("employees").Particle("emp")
	if emp == nil || !emp.Repeating() || !emp.Optional() {
		t.Fatal("emp should be 0..unbounded")
	}
	// Column types flow into leaf types.
	if s.Lookup("sal").Type != xschema.TypeInt {
		t.Fatal("sal should be int")
	}
	if s.Lookup("ename").Type != xschema.TypeString {
		t.Fatal("ename should be string")
	}
	// Schema is non-recursive, so the sample generator works.
	if s.IsRecursive() {
		t.Fatal("view schema cannot be recursive")
	}
	if _, err := s.GenerateSample(xschema.SampleOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSchemaWithAttrsAndAggregates(t *testing.T) {
	db := relstore.NewDB()
	tbl, _ := db.CreateTable("t",
		relstore.Column{Name: "id", Type: relstore.IntCol},
		relstore.Column{Name: "name", Type: relstore.StringCol})
	_, _ = tbl.Insert(int64(1), "x")
	ex := NewExecutor(db)
	v := &ViewDef{Name: "v", Table: "t", Body: &Element{
		Name:  "item",
		Attrs: []Attr{{Name: "id", Value: &Column{Name: "id"}}},
		Children: []XMLExpr{
			&Element{Name: "n", Children: []XMLExpr{
				&ScalarAgg{Fn: "count", Sub: &SubQuery{Table: "t"}},
			}},
		},
	}}
	s, err := ex.DeriveSchema(v)
	if err != nil {
		t.Fatal(err)
	}
	item := s.Lookup("item")
	if item.Attr("id") == nil || item.Attr("id").Type != xschema.TypeInt {
		t.Fatal("attribute type wrong")
	}
	if s.Lookup("n").Type != xschema.TypeInt {
		t.Fatal("count leaf should be int")
	}
}

func TestStatsAccumulate(t *testing.T) {
	db, ex := setup(t)
	_ = db.Table("emp").CreateIndex("deptno")
	if _, err := ex.MaterializeView(DeptEmpView()); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.IndexProbes == 0 {
		t.Fatal("correlated subquery should probe the deptno index")
	}
	if ex.Stats.RowsScanned == 0 {
		t.Fatal("driving table scan should count rows")
	}
}

func TestErrorPaths(t *testing.T) {
	_, ex := setup(t)
	if _, err := ex.MaterializeView(&ViewDef{Name: "v", Table: "missing", Body: &Literal{}}); err == nil {
		t.Fatal("unknown driving table should error")
	}
	if _, err := ex.ExecQuery(&Query{Table: "missing", Body: &Literal{}}); err == nil {
		t.Fatal("unknown query table should error")
	}
	bad := &ViewDef{Name: "v", Table: "dept", Body: &Element{Name: "x", Children: []XMLExpr{
		&Agg{Sub: &SubQuery{Table: "missing", Body: &Element{Name: "y"}}},
	}}}
	if _, err := ex.MaterializeView(bad); err == nil {
		t.Fatal("unknown subquery table should error")
	}
	// Attribute values must be scalar.
	bad2 := &ViewDef{Name: "v", Table: "dept", Body: &Element{Name: "x",
		Attrs: []Attr{{Name: "a", Value: &Element{Name: "nested"}}}}}
	if _, err := ex.MaterializeView(bad2); err == nil {
		t.Fatal("element-valued attribute should error")
	}
}

func TestExecQueryParallelMatchesSerial(t *testing.T) {
	db, ex := setup(t)
	// Widen the data so parallelism has rows to chew on.
	for d := 100; d < 140; d++ {
		if _, err := db.Table("dept").Insert(int64(d), "D", "L"); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 5; e++ {
			if _, err := db.Table("emp").Insert(int64(d*10+e), "N", "J", int64(1000+e), int64(d)); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := &Query{
		Table: "dept",
		Body: &Element{Name: "d", Children: []XMLExpr{
			&Agg{Sub: &SubQuery{Table: "emp", CorrInner: "deptno", CorrOuter: "deptno",
				Body: &Element{Name: "e", Children: []XMLExpr{&Column{Name: "empno"}}}}},
		}},
	}
	serial, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ex.ExecQueryParallel(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].String() != parallel[i].String() {
			t.Fatalf("row %d differs", i)
		}
	}
	// workers<2 degrades to serial.
	one, err := ex.ExecQueryParallel(q, 1)
	if err != nil || len(one) != len(serial) {
		t.Fatal("workers=1 fallback wrong")
	}
}

func TestDeriveSchemaRejectsMixedContent(t *testing.T) {
	db := relstore.NewDB()
	tbl, _ := db.CreateTable("t", relstore.Column{Name: "v", Type: relstore.StringCol})
	_, _ = tbl.Insert("x")
	ex := NewExecutor(db)
	v := &ViewDef{Name: "v", Table: "t", Body: &Element{Name: "p", Children: []XMLExpr{
		&Literal{Text: "prefix "},
		&Element{Name: "b", Children: []XMLExpr{&Column{Name: "v"}}},
	}}}
	if _, err := ex.DeriveSchema(v); err == nil {
		t.Fatal("mixed content must be rejected (fallback to functional evaluation)")
	}
	// The view still materializes fine — only the rewrite refuses.
	docs, err := ex.MaterializeView(v)
	if err != nil {
		t.Fatal(err)
	}
	if nows(docs[0].String()) != `<?xml version="1.0"?><p>prefix <b>x</b></p>` {
		t.Fatalf("materialize = %s", docs[0].String())
	}
}
