package sqlxml

import (
	"io"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/xmltree"
)

// This file is the streaming half of the executor (the paper's §6
// iterator-based pull evaluation): instead of collecting every driving row
// up front, a cursor holds the relstore access-path iterator open and
// constructs one XMLType instance per Next call. The materializing
// ExecQuery/MaterializeView entry points in view.go drain these cursors, so
// both execution styles share one construction path.
//
// Cursors write physical-operator counters to the sink passed at open time;
// passing a per-run sink keeps concurrent executions from sharing counters.
// A governor passed at open time bounds the execution: the driving iterator
// and the per-row construction both stop promptly when it reports
// cancellation or an exhausted budget.

// DocCursor is the common pull interface of the streaming executors: Next
// returns the next constructed document, or io.EOF at end of stream.
type DocCursor interface {
	Next() (*xmltree.Node, error)
}

// QueryCursor streams a SQL/XML query one qualifying driving row at a time.
type QueryCursor struct {
	body XMLExpr
	t    *relstore.Table
	it   relstore.Iterator
	ec   *evalContext
	fp   string // faultpoint name hit once per constructed row

	// Operator spans, set only when the RunSpec carried a trace span
	// (startOperators). Next dispatches on scanSp so an untraced cursor
	// pays exactly one nil check per row.
	scanSp  *obs.Span
	buildSp *obs.Span
}

// OpenQueryCursor opens a streaming execution of q. Operator counters go to
// sink (which may be nil to discard them).
func (e *Executor) OpenQueryCursor(q *Query, sink *relstore.Stats) (*QueryCursor, error) {
	return e.OpenQueryCursorGoverned(q, sink, nil)
}

// OpenQueryCursorGoverned is OpenQueryCursor under an execution governor
// (may be nil). It is the nil-spec form of OpenQueryCursorSpec.
func (e *Executor) OpenQueryCursorGoverned(q *Query, sink *relstore.Stats, g *governor.G) (*QueryCursor, error) {
	return e.OpenQueryCursorSpec(q, sink, g, nil)
}

// Next constructs the XML for the next qualifying driving row. It returns
// io.EOF when the driving iterator is exhausted, and the iterator's
// terminal error (cancellation, injected fault) when it stopped early.
func (c *QueryCursor) Next() (*xmltree.Node, error) {
	if c.scanSp != nil {
		return c.nextTraced()
	}
	if err := faultpoint.Hit(c.fp); err != nil {
		return nil, err
	}
	id, ok := c.it.Next()
	if !ok {
		if err := c.it.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	doc := xmltree.NewDocument()
	if err := c.ec.evalInto(doc, c.body, c.t, id); err != nil {
		return nil, err
	}
	doc.Renumber()
	return doc, nil
}

// nextTraced is Next with per-operator timing: the driving iterator's pull
// accrues on the scan span, the XML construction on the construct span, so
// EXPLAIN ANALYZE can attribute a streaming run's time row by row.
func (c *QueryCursor) nextTraced() (*xmltree.Node, error) {
	if err := faultpoint.Hit(c.fp); err != nil {
		c.scanSp.Fail(err)
		return nil, err
	}
	scanStart := time.Now()
	id, ok := c.it.Next()
	c.scanSp.ObserveSince(scanStart)
	if !ok {
		if err := c.it.Err(); err != nil {
			c.scanSp.Fail(err)
			return nil, err
		}
		return nil, io.EOF
	}
	c.scanSp.AddRowsOut(1)
	buildStart := time.Now()
	c.buildSp.AddRowsIn(1)
	doc := xmltree.NewDocument()
	if err := c.ec.evalInto(doc, c.body, c.t, id); err != nil {
		c.buildSp.ObserveSince(buildStart)
		c.buildSp.Fail(err)
		return nil, err
	}
	doc.Renumber()
	c.buildSp.ObserveSince(buildStart)
	c.buildSp.AddRowsOut(1)
	return doc, nil
}

// OpenViewCursor opens a streaming materialization of v: one XMLType
// instance per driving-table row, pulled on demand.
func (e *Executor) OpenViewCursor(v *ViewDef, sink *relstore.Stats) (*QueryCursor, error) {
	return e.OpenViewCursorGoverned(v, sink, nil)
}

// OpenViewCursorGoverned is OpenViewCursor under an execution governor
// (may be nil). It is the nil-spec, unfiltered form of OpenViewCursorSpec:
// every driving row materializes.
func (e *Executor) OpenViewCursorGoverned(v *ViewDef, sink *relstore.Stats, g *governor.G) (*QueryCursor, error) {
	return e.OpenViewCursorSpec(v, nil, sink, g, nil)
}

// drainCursor collects a cursor's remaining documents (the materializing
// execution style, layered on the streaming one).
func drainCursor(c DocCursor) ([]*xmltree.Node, error) {
	var out []*xmltree.Node
	for {
		doc, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, doc)
	}
}
