package sqlxml

import (
	"fmt"
	"io"

	"repro/internal/relstore"
	"repro/internal/xmltree"
)

// This file is the streaming half of the executor (the paper's §6
// iterator-based pull evaluation): instead of collecting every driving row
// up front, a cursor holds the relstore access-path iterator open and
// constructs one XMLType instance per Next call. The materializing
// ExecQuery/MaterializeView entry points in view.go drain these cursors, so
// both execution styles share one construction path.
//
// Cursors write physical-operator counters to the sink passed at open time;
// passing a per-run sink keeps concurrent executions from sharing counters.

// DocCursor is the common pull interface of the streaming executors: Next
// returns the next constructed document, or io.EOF at end of stream.
type DocCursor interface {
	Next() (*xmltree.Node, error)
}

// QueryCursor streams a SQL/XML query one qualifying driving row at a time.
type QueryCursor struct {
	body XMLExpr
	t    *relstore.Table
	it   relstore.Iterator
	ec   *evalContext
}

// OpenQueryCursor opens a streaming execution of q. Operator counters go to
// sink (which may be nil to discard them).
func (e *Executor) OpenQueryCursor(q *Query, sink *relstore.Stats) (*QueryCursor, error) {
	t := e.DB.Table(q.Table)
	if t == nil {
		return nil, fmt.Errorf("sqlxml: query references unknown table %q", q.Table)
	}
	return &QueryCursor{
		body: q.Body,
		t:    t,
		it:   relstore.AccessPath(t, q.Where, sink),
		ec:   &evalContext{db: e.DB, stats: sink},
	}, nil
}

// Next constructs the XML for the next qualifying driving row. It returns
// io.EOF when the driving iterator is exhausted.
func (c *QueryCursor) Next() (*xmltree.Node, error) {
	id, ok := c.it.Next()
	if !ok {
		return nil, io.EOF
	}
	doc := xmltree.NewDocument()
	if err := c.ec.evalInto(doc, c.body, c.t, id); err != nil {
		return nil, err
	}
	doc.Renumber()
	return doc, nil
}

// OpenViewCursor opens a streaming materialization of v: one XMLType
// instance per driving-table row, pulled on demand.
func (e *Executor) OpenViewCursor(v *ViewDef, sink *relstore.Stats) (*QueryCursor, error) {
	t := e.DB.Table(v.Table)
	if t == nil {
		return nil, fmt.Errorf("sqlxml: view %q references unknown table %q", v.Name, v.Table)
	}
	return &QueryCursor{
		body: v.Body,
		t:    t,
		it:   relstore.FullScan(t, sink),
		ec:   &evalContext{db: e.DB, stats: sink},
	}, nil
}

// drainCursor collects a cursor's remaining documents (the materializing
// execution style, layered on the streaming one).
func drainCursor(c DocCursor) ([]*xmltree.Node, error) {
	var out []*xmltree.Node
	for {
		doc, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, doc)
	}
}
