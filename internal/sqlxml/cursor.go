package sqlxml

import (
	"io"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/xmltree"
)

// This file is the streaming half of the executor (the paper's §6
// iterator-based pull evaluation): instead of collecting every driving row
// up front, a cursor holds the relstore access-path iterator open and
// constructs one XMLType instance per Next call. The materializing
// ExecQuery/MaterializeView entry points in view.go drain these cursors, so
// both execution styles share one construction path.
//
// Cursors write physical-operator counters to the sink passed at open time;
// passing a per-run sink keeps concurrent executions from sharing counters.
// A governor passed at open time bounds the execution: the driving iterator
// and the per-row construction both stop promptly when it reports
// cancellation or an exhausted budget.

// DocCursor is the common pull interface of the streaming executors: Next
// returns the next constructed document, or io.EOF at end of stream.
type DocCursor interface {
	Next() (*xmltree.Node, error)
}

// QueryCursor streams a SQL/XML query one qualifying driving row at a time.
// Internally it consumes the driving access path batch-at-a-time: the scan
// refills a pooled relstore.Batch of row ids + row references, and Next
// constructs one document per buffered row — the per-call surface stays
// row-oriented while the storage layer pays its locks, fault checks and
// governor ticks once per ~1024 rows.
type QueryCursor struct {
	body XMLExpr
	ts   *relstore.TableSnap
	it   relstore.BatchIterator
	ec   *evalContext
	fp   string // faultpoint name hit once per constructed row

	batch *relstore.Batch // current chunk (nil before first refill / after EOF)
	bpos  int             // consumption offset into batch

	// Operator spans, set only when the RunSpec carried a trace span
	// (startOperators). Next dispatches on scanSp so an untraced cursor
	// pays exactly one nil check per row.
	scanSp  *obs.Span
	buildSp *obs.Span
}

// refill pulls the next batch from the driving iterator. It returns io.EOF
// on clean exhaustion, the iterator's terminal error otherwise, and returns
// the batch to the pool once the stream ends either way.
func (c *QueryCursor) refill() error {
	if c.batch == nil {
		c.batch = relstore.GetBatch(0)
	}
	c.bpos = 0
	if _, ok := c.it.NextBatch(c.batch); !ok {
		relstore.PutBatch(c.batch)
		c.batch = nil
		if err := c.it.Err(); err != nil {
			return err
		}
		// Surface how many morsels the parallel scan executed, if any, now
		// that the scan is complete.
		if c.scanSp != nil {
			if ms, ok := c.it.(interface{ MorselsExecuted() int }); ok {
				if n := ms.MorselsExecuted(); n > 0 {
					c.scanSp.SetAttr("morsels", n)
				}
			}
		}
		return io.EOF
	}
	return nil
}

// OpenQueryCursor opens a streaming execution of q. Operator counters go to
// sink (which may be nil to discard them).
func (e *Executor) OpenQueryCursor(q *Query, sink *relstore.Stats) (*QueryCursor, error) {
	return e.OpenQueryCursorGoverned(q, sink, nil)
}

// OpenQueryCursorGoverned is OpenQueryCursor under an execution governor
// (may be nil). It is the nil-spec form of OpenQueryCursorSpec.
func (e *Executor) OpenQueryCursorGoverned(q *Query, sink *relstore.Stats, g *governor.G) (*QueryCursor, error) {
	return e.OpenQueryCursorSpec(q, sink, g, nil)
}

// Next constructs the XML for the next qualifying driving row. It returns
// io.EOF when the driving iterator is exhausted, and the iterator's
// terminal error (cancellation, injected fault) when it stopped early.
func (c *QueryCursor) Next() (*xmltree.Node, error) {
	if c.scanSp != nil {
		return c.nextTraced()
	}
	if err := faultpoint.Hit(c.fp); err != nil {
		return nil, err
	}
	if c.batch == nil || c.bpos >= c.batch.Len() {
		if err := c.refill(); err != nil {
			return nil, err
		}
	}
	id := c.batch.IDs[c.bpos]
	c.ec.setRow(c.ts, id, c.batch.Rows[c.bpos])
	c.bpos++
	doc := xmltree.NewDocument()
	if err := c.ec.evalInto(doc, c.body, c.ts, id); err != nil {
		return nil, err
	}
	doc.Renumber()
	return doc, nil
}

// nextTraced is Next with per-operator timing: the driving iterator's
// batch refills accrue on the scan span, the XML construction on the
// construct span, so EXPLAIN ANALYZE can attribute a streaming run's time.
// Scan rows-out is credited per refilled batch (the sum over refills equals
// the row count, exactly as the per-row accounting did).
func (c *QueryCursor) nextTraced() (*xmltree.Node, error) {
	if err := faultpoint.Hit(c.fp); err != nil {
		c.scanSp.Fail(err)
		return nil, err
	}
	if c.batch == nil || c.bpos >= c.batch.Len() {
		scanStart := time.Now()
		err := c.refill()
		c.scanSp.ObserveSince(scanStart)
		if err != nil {
			if err != io.EOF {
				c.scanSp.Fail(err)
			}
			return nil, err
		}
		c.scanSp.AddRowsOut(int64(c.batch.Len()))
	}
	id := c.batch.IDs[c.bpos]
	c.ec.setRow(c.ts, id, c.batch.Rows[c.bpos])
	c.bpos++
	buildStart := time.Now()
	c.buildSp.AddRowsIn(1)
	doc := xmltree.NewDocument()
	if err := c.ec.evalInto(doc, c.body, c.ts, id); err != nil {
		c.buildSp.ObserveSince(buildStart)
		c.buildSp.Fail(err)
		return nil, err
	}
	doc.Renumber()
	c.buildSp.ObserveSince(buildStart)
	c.buildSp.AddRowsOut(1)
	return doc, nil
}

// OpenViewCursor opens a streaming materialization of v: one XMLType
// instance per driving-table row, pulled on demand.
func (e *Executor) OpenViewCursor(v *ViewDef, sink *relstore.Stats) (*QueryCursor, error) {
	return e.OpenViewCursorGoverned(v, sink, nil)
}

// OpenViewCursorGoverned is OpenViewCursor under an execution governor
// (may be nil). It is the nil-spec, unfiltered form of OpenViewCursorSpec:
// every driving row materializes.
func (e *Executor) OpenViewCursorGoverned(v *ViewDef, sink *relstore.Stats, g *governor.G) (*QueryCursor, error) {
	return e.OpenViewCursorSpec(v, nil, sink, g, nil)
}

// drainCursor collects a cursor's remaining documents (the materializing
// execution style, layered on the streaming one).
func drainCursor(c DocCursor) ([]*xmltree.Node, error) {
	var out []*xmltree.Node
	for {
		doc, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, doc)
	}
}
