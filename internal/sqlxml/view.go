package sqlxml

import (
	"fmt"
	"strings"

	"repro/internal/governor"
	"repro/internal/relstore"
	"repro/internal/xmltree"
	"repro/internal/xschema"
)

// ViewDef is an XMLType view over a relational table (paper Table 3):
// one XMLType instance per driving-table row, constructed by Body.
type ViewDef struct {
	Name  string
	Table string
	Body  XMLExpr
}

// SQL renders the CREATE VIEW statement.
func (v *ViewDef) SQL() string {
	return fmt.Sprintf("CREATE VIEW %s AS\nSELECT\n%s AS %s_content\nFROM %s",
		v.Name, indentSQL(v.Body.SQL()), v.Name, v.Table)
}

func indentSQL(s string) string { return "  " + strings.ReplaceAll(s, "\n", "\n  ") }

// Query is an executable SQL/XML query: for each driving-table row passing
// Where, emit the XML produced by Body. The rewriter lowers XQuery to this
// form (paper Tables 7 and 11).
type Query struct {
	Table string
	Where []relstore.Pred
	Body  XMLExpr
}

// SQL renders the query.
func (q *Query) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(q.Body.SQL())
	sb.WriteString("\nFROM " + strings.ToUpper(q.Table))
	if len(q.Where) > 0 {
		var conds []string
		for _, p := range q.Where {
			conds = append(conds, strings.ToUpper(p.String()))
		}
		sb.WriteString("\nWHERE " + strings.Join(conds, " AND "))
	}
	return sb.String()
}

// Executor runs views and queries against a relstore database.
type Executor struct {
	DB *relstore.DB
	// Stats accumulates physical-operator counters across executions.
	// Concurrent runs that need isolated counters pass their own sink to
	// the ...With variants and merge it back via AddStats; read this field
	// with Stats.Snapshot while runs are in flight.
	Stats relstore.Stats
}

// NewExecutor returns an executor over db.
func NewExecutor(db *relstore.DB) *Executor {
	return &Executor{DB: db}
}

// AddStats merges a per-run stats sink into the executor's accumulated
// counters (atomically).
func (e *Executor) AddStats(s *relstore.Stats) { e.Stats.Add(s) }

// MaterializeView builds the XMLType instance for every row of the view's
// driving table (the paper's "functional evaluation" input path: the XML
// must be materialized before XSLT can run on it). Each result is a
// document node. Counters accumulate into e.Stats.
func (e *Executor) MaterializeView(v *ViewDef) ([]*xmltree.Node, error) {
	return e.MaterializeViewWith(v, &e.Stats)
}

// MaterializeViewWith is MaterializeView with an explicit stats sink.
func (e *Executor) MaterializeViewWith(v *ViewDef, sink *relstore.Stats) ([]*xmltree.Node, error) {
	return e.MaterializeViewGoverned(v, sink, nil)
}

// MaterializeViewGoverned is MaterializeViewWith under an execution
// governor (may be nil).
func (e *Executor) MaterializeViewGoverned(v *ViewDef, sink *relstore.Stats, g *governor.G) ([]*xmltree.Node, error) {
	c, err := e.OpenViewCursorGoverned(v, sink, g)
	if err != nil {
		return nil, err
	}
	return drainCursor(c)
}

// MaterializeRow builds the XMLType instance for a single driving row,
// pinning a fresh snapshot for the construction.
func (e *Executor) MaterializeRow(v *ViewDef, rowID int) (*xmltree.Node, error) {
	snap := e.DB.Snapshot()
	ts := snap.Table(v.Table)
	if ts == nil {
		return nil, fmt.Errorf("sqlxml: view %q references unknown table %q", v.Name, v.Table)
	}
	ec := &evalContext{snap: snap, stats: &e.Stats}
	doc := xmltree.NewDocument()
	if err := ec.evalInto(doc, v.Body, ts, rowID); err != nil {
		return nil, err
	}
	doc.Renumber()
	return doc, nil
}

// ExecQuery runs a SQL/XML query: one result fragment per qualifying row of
// the driving table. The access path uses indexes when available. Counters
// accumulate into e.Stats.
func (e *Executor) ExecQuery(q *Query) ([]*xmltree.Node, error) {
	return e.ExecQueryWith(q, &e.Stats)
}

// ExecQueryWith is ExecQuery with an explicit stats sink.
func (e *Executor) ExecQueryWith(q *Query, sink *relstore.Stats) ([]*xmltree.Node, error) {
	c, err := e.OpenQueryCursor(q, sink)
	if err != nil {
		return nil, err
	}
	return drainCursor(c)
}

// ExplainQuery describes the physical plan: the driving access path plus
// each nested subquery's access path. It is the nil-spec form of
// ExplainQuerySpec.
func (e *Executor) ExplainQuery(q *Query) string {
	return e.ExplainQuerySpec(q, nil)
}

func explainSubqueries(db *relstore.DB, expr XMLExpr, sb *strings.Builder, pad string) {
	switch x := expr.(type) {
	case *Element:
		for _, c := range x.Children {
			explainSubqueries(db, c, sb, pad)
		}
	case *Concat:
		for _, c := range x.Items {
			explainSubqueries(db, c, sb, pad)
		}
	case *Agg:
		explainSub(db, x.Sub, sb, pad)
	case *ScalarAgg:
		explainSub(db, x.Sub, sb, pad)
	}
}

func explainSub(db *relstore.DB, sub *SubQuery, sb *strings.Builder, pad string) {
	inner := db.Table(sub.Table)
	if inner == nil {
		return
	}
	preds := append([]relstore.Pred{}, sub.Where...)
	if sub.CorrInner != "" {
		// Correlation value is per-row; plan with a placeholder.
		preds = append(preds, relstore.Pred{Col: sub.CorrInner, Op: relstore.CmpEq, Val: int64(0)})
	}
	sb.WriteString("\n" + pad + "-> " + relstore.PlanAccess(inner, preds).Explain(inner))
	if sub.CorrInner != "" {
		sb.WriteString(" (correlated: " + sub.CorrInner + " = outer." + sub.CorrOuter + ")")
	}
	if sub.Body != nil {
		explainSubqueries(db, sub.Body, sb, pad+"  ")
	}
}

// DeriveSchema computes the structural schema of the view's XMLType output
// (paper §3.2: "we can get the XML structural information from the
// underlying relational or object relational schema").
func (e *Executor) DeriveSchema(v *ViewDef) (*xschema.Schema, error) {
	t := e.DB.Table(v.Table)
	if t == nil {
		return nil, fmt.Errorf("sqlxml: view %q references unknown table %q", v.Name, v.Table)
	}
	s := xschema.NewSchema()
	root, err := deriveElem(e.DB, s, v.Body, t)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("sqlxml: view %q body must be a single XMLElement", v.Name)
	}
	s.Root = root
	return s, nil
}

// deriveElem maps an XMLExpr to an element declaration (for Element) or
// returns nil for non-element expressions.
func deriveElem(db *relstore.DB, s *xschema.Schema, expr XMLExpr, t *relstore.Table) (*xschema.ElemDecl, error) {
	el, ok := expr.(*Element)
	if !ok {
		return nil, nil
	}
	decl := s.Declare(el.Name)
	for _, a := range el.Attrs {
		at := xschema.TypeString
		if c, ok := a.Value.(*Column); ok {
			at = colSchemaType(t, c.Name)
		}
		if decl.Attr(a.Name) == nil {
			decl.Attrs = append(decl.Attrs, &xschema.AttrDecl{Name: a.Name, Type: at})
		}
	}
	// Classify content.
	var children []*xschema.Particle
	isText := false
	textType := xschema.TypeString
	var walk func(kids []XMLExpr) error
	walk = func(kids []XMLExpr) error {
		for _, k := range kids {
			switch c := k.(type) {
			case *Element:
				kd, err := deriveElem(db, s, c, t)
				if err != nil {
					return err
				}
				children = append(children, &xschema.Particle{Child: kd, Min: 1, Max: 1})
			case *Column:
				isText = true
				textType = colSchemaType(t, c.Name)
			case *Literal:
				isText = true
			case *ScalarAgg:
				isText = true
				if c.Fn != "count" {
					textType = xschema.TypeFloat
				} else {
					textType = xschema.TypeInt
				}
			case *Concat:
				if err := walk(c.Items); err != nil {
					return err
				}
			case *Agg:
				innerT := db.Table(c.Sub.Table)
				if innerT == nil {
					return fmt.Errorf("sqlxml: unknown table %q", c.Sub.Table)
				}
				kd, err := deriveElem(db, s, c.Sub.Body, innerT)
				if err != nil {
					return err
				}
				if kd == nil {
					return fmt.Errorf("sqlxml: XMLAgg body must be an XMLElement")
				}
				// Aggregated rows repeat 0..unbounded.
				children = append(children, &xschema.Particle{Child: kd, Min: 0, Max: xschema.Unbounded})
			}
		}
		return nil
	}
	if err := walk(el.Children); err != nil {
		return nil, err
	}
	switch {
	case len(children) > 0 && isText:
		// Mixed content cannot be captured by the structural schema model
		// (an element is either a typed leaf or a compositor); rewriting
		// against it would silently drop the text. Refuse, so the caller
		// falls back to functional evaluation.
		return nil, fmt.Errorf("sqlxml: element %q mixes text and element content; mixed content is not rewritable", el.Name)
	case len(children) > 0:
		decl.Group = xschema.GroupSeq
		decl.Children = children
	case isText:
		decl.Group = xschema.GroupText
		decl.Type = textType
	default:
		decl.Group = xschema.GroupEmpty
	}
	return decl, nil
}

func colSchemaType(t *relstore.Table, col string) xschema.Type {
	ct, ok := t.ColType(col)
	if !ok {
		return xschema.TypeString
	}
	switch ct {
	case relstore.IntCol:
		return xschema.TypeInt
	case relstore.FloatCol:
		return xschema.TypeFloat
	default:
		return xschema.TypeString
	}
}

// DeptEmpView constructs the paper's Table 3 view over dept/emp tables;
// shared by tests, examples and the benchmark harness.
func DeptEmpView() *ViewDef {
	return &ViewDef{
		Name:  "dept_emp",
		Table: "dept",
		Body: &Element{Name: "dept", Children: []XMLExpr{
			&Element{Name: "dname", Children: []XMLExpr{&Column{Name: "dname"}}},
			&Element{Name: "loc", Children: []XMLExpr{&Column{Name: "loc"}}},
			&Element{Name: "employees", Children: []XMLExpr{
				&Agg{Sub: &SubQuery{
					Table:     "emp",
					CorrInner: "deptno",
					CorrOuter: "deptno",
					Body: &Element{Name: "emp", Children: []XMLExpr{
						&Element{Name: "empno", Children: []XMLExpr{&Column{Name: "empno"}}},
						&Element{Name: "ename", Children: []XMLExpr{&Column{Name: "ename"}}},
						&Element{Name: "sal", Children: []XMLExpr{&Column{Name: "sal"}}},
					}},
				}},
			}},
		}},
	}
}

// SetupDeptEmp creates and populates the paper's dept/emp tables (Tables 1
// and 2) in db.
func SetupDeptEmp(db *relstore.DB) error {
	dept, err := db.CreateTable("dept",
		relstore.Column{Name: "deptno", Type: relstore.IntCol},
		relstore.Column{Name: "dname", Type: relstore.StringCol},
		relstore.Column{Name: "loc", Type: relstore.StringCol})
	if err != nil {
		return err
	}
	emp, err := db.CreateTable("emp",
		relstore.Column{Name: "empno", Type: relstore.IntCol},
		relstore.Column{Name: "ename", Type: relstore.StringCol},
		relstore.Column{Name: "job", Type: relstore.StringCol},
		relstore.Column{Name: "sal", Type: relstore.IntCol},
		relstore.Column{Name: "deptno", Type: relstore.IntCol})
	if err != nil {
		return err
	}
	rows := [][]relstore.Value{
		{int64(10), "ACCOUNTING", "NEW YORK"},
		{int64(40), "OPERATIONS", "BOSTON"},
	}
	for _, r := range rows {
		if _, err := dept.Insert(r...); err != nil {
			return err
		}
	}
	empRows := [][]relstore.Value{
		{int64(7782), "CLARK", "MANAGER", int64(2450), int64(10)},
		{int64(7934), "MILLER", "CLERK", int64(1300), int64(10)},
		{int64(7954), "SMITH", "VP", int64(4900), int64(40)},
	}
	for _, r := range empRows {
		if _, err := emp.Insert(r...); err != nil {
			return err
		}
	}
	return nil
}

// ExecQueryParallel runs the query with row-level parallelism across
// workers goroutines (the paper notes the rewritten SQL/XML "can be
// efficiently executed by the underlying RDBMS aggregation process in
// parallel manner"). Results keep driving-row order. workers < 2 falls back
// to the serial path. Counters accumulate into e.Stats.
func (e *Executor) ExecQueryParallel(q *Query, workers int) ([]*xmltree.Node, error) {
	return e.ExecQueryParallelWith(q, workers, &e.Stats)
}

// ExecQueryParallelWith is ExecQueryParallel with an explicit stats sink.
// All workers write to sink atomically; callers that need per-run isolation
// pass a fresh sink and merge it back with AddStats.
func (e *Executor) ExecQueryParallelWith(q *Query, workers int, sink *relstore.Stats) ([]*xmltree.Node, error) {
	return e.ExecQueryParallelGoverned(q, workers, sink, nil)
}

// ExecQueryParallelGoverned is ExecQueryParallelWith under an execution
// governor (may be nil): the driving scan, every worker's construction, and
// the dispatch loop itself all stop promptly when g reports cancellation or
// an exhausted budget. It is the nil-spec form of ExecQueryParallelSpec.
func (e *Executor) ExecQueryParallelGoverned(q *Query, workers int, sink *relstore.Stats, g *governor.G) ([]*xmltree.Node, error) {
	return e.ExecQueryParallelSpec(q, workers, sink, g, nil)
}
