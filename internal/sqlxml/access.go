package sqlxml

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/xmltree"
)

// This file is the access-path layer of the executor: every entry point that
// drives a table goes through one chooser (chooseAccess) fed by a RunSpec —
// the per-run half of the facade's unified Run API. The compiled plan is
// immutable and shared; everything a run can vary (extra predicates from
// WithWhere, bind variables from WithParam, the WithoutPushdown switch) rides
// in the spec and is merged copy-on-write, so concurrent runs of one plan
// never see each other's parameters.

// RunSpec carries per-run execution parameters into the executor. A nil
// *RunSpec means "no per-run parameters"; the legacy Governed entry points
// pass nil and behave exactly as before.
type RunSpec struct {
	// Extra holds driving-table predicates supplied at run time (WithWhere);
	// they AND with the plan's compiled WHERE clause.
	Extra []relstore.Pred
	// Params binds ParamValue placeholders — in the driving predicates and
	// anywhere in the query body — to concrete values for this run.
	Params map[string]relstore.Value
	// NoPushdown forces a full scan with every predicate applied as a
	// residual filter: same rows, no index use (the WithoutPushdown debug
	// option; output must be byte-identical).
	NoPushdown bool
	// AccessPath, when non-nil, receives the EXPLAIN line of the chosen
	// driving access path (surfaced as ExecStats.AccessPath).
	AccessPath *string
	// EstRows, when non-nil, receives the planner's cardinality estimate
	// for the chosen driving access path (surfaced as ExecStats.EstRows and
	// compared against actual rows by the cardinality-accuracy tracker).
	EstRows *int64
	// AccessShape, when non-nil, receives the normalized access-path shape
	// (kind + table + column, no bound values — relstore AccessPlan.Shape):
	// the aggregation key under which est-vs-actual accuracy is tracked.
	AccessShape *string
	// Span, when non-nil, is the trace span of the strategy attempt this run
	// executes under; the executor opens scan/construct operator spans
	// beneath it. Nil (the usual case) disables operator tracing entirely.
	Span *obs.Span
	// Batch configures the driving access path's batch pipeline (chunk size
	// and morsel workers for full scans). The zero value means defaults.
	Batch relstore.BatchOpts
	// Snap, when non-nil, is the MVCC snapshot this run is pinned to: every
	// table read — driving scan, subqueries, aggregates — resolves against
	// it, so concurrent DML never perturbs an in-flight run. Nil (the legacy
	// entry points) pins a fresh snapshot at open time.
	Snap *relstore.Snapshot
}

// snapshot returns the spec's pinned snapshot, or pins a fresh one from db
// for specs (and nil specs) that did not carry one.
func (s *RunSpec) snapshot(db *relstore.DB) *relstore.Snapshot {
	if s != nil && s.Snap != nil {
		return s.Snap
	}
	return db.Snapshot()
}

// smallTableRows is the chooser's only magic number: at or below this many
// rows a B-tree range scan cannot beat a straight scan of the heap, so the
// range path is demoted. Equality probes are never demoted — a probe's cost
// does not grow with the table.
const smallTableRows = 2

// merged returns the compiled WHERE clause joined with the spec's extra
// run-time predicates (copy-on-write: the compiled slice is never mutated).
func (s *RunSpec) merged(where []relstore.Pred) []relstore.Pred {
	if s == nil || len(s.Extra) == 0 {
		return where
	}
	out := make([]relstore.Pred, 0, len(where)+len(s.Extra))
	out = append(out, where...)
	return append(out, s.Extra...)
}

func (s *RunSpec) params() map[string]relstore.Value {
	if s == nil {
		return nil
	}
	return s.Params
}

func (s *RunSpec) noPushdown() bool { return s != nil && s.NoPushdown }

func (s *RunSpec) span() *obs.Span {
	if s == nil {
		return nil
	}
	return s.Span
}

func (s *RunSpec) batchOpts() relstore.BatchOpts {
	if s == nil {
		return relstore.BatchOpts{}
	}
	return s.Batch
}

// startOperators opens the scan and construct operator spans for a streaming
// cursor under the spec's attempt span. When no trace is attached (the usual
// case) the cursor's span fields stay nil and Next takes its untraced path.
func (s *RunSpec) startOperators(ts *relstore.TableSnap, plan relstore.AccessPlan, c *QueryCursor) {
	sp := s.span()
	if sp == nil {
		return
	}
	c.scanSp = sp.Start("scan")
	c.scanSp.SetAttr("path", plan.Explain(ts.Table()))
	c.scanSp.SetAttr("est_rows", plan.EstimateRows())
	c.scanSp.SetAttr("batch_size", s.batchOpts().Size())
	if plan.Kind == relstore.PathFullScan {
		// Report the workers the scan actually engaged: 1 for a serial
		// scan (small table or forced), the pool bound on the morsel path.
		w := 1
		if mw, ok := c.it.(interface{ ScanWorkers() int }); ok {
			w = mw.ScanWorkers()
		}
		c.scanSp.SetAttr("workers", w)
	}
	c.buildSp = sp.Start("construct")
}

func (s *RunSpec) recordPath(ts *relstore.TableSnap, plan relstore.AccessPlan) {
	if s == nil {
		return
	}
	if s.AccessPath != nil {
		*s.AccessPath = plan.Explain(ts.Table())
	}
	if s.EstRows != nil {
		*s.EstRows = int64(plan.EstimateRows())
	}
	if s.AccessShape != nil {
		*s.AccessShape = plan.Shape(ts.Table())
	}
}

// chooseAccess picks the physical access path for the pinned driving table:
// the planner's choice (PlanAccessAt), demoted to a full scan when the
// statistics say the index cannot pay for itself, or a forced full scan when
// pushdown is disabled. Either way the same predicates apply — only the
// mechanism differs — so the row set is identical across choices.
func chooseAccess(ts *relstore.TableSnap, preds []relstore.Pred, noPushdown bool) relstore.AccessPlan {
	if noPushdown {
		return relstore.FullScanPlanAt(ts, preds)
	}
	plan := relstore.PlanAccessAt(ts, preds)
	if plan.Kind == relstore.PathIndexRange && plan.TableRows <= smallTableRows {
		return relstore.FullScanPlanAt(ts, preds)
	}
	return plan
}

// planDriving merges the compiled WHERE clause with the spec's extras, binds
// every parameter strictly (an unbound one is an error — running it would
// silently match nothing), chooses the access path against the pinned
// snapshot, and reports it back through the spec.
func (s *RunSpec) planDriving(ts *relstore.TableSnap, where []relstore.Pred) (relstore.AccessPlan, error) {
	bound, err := relstore.BindPreds(s.merged(where), s.params())
	if err != nil {
		return relstore.AccessPlan{}, err
	}
	plan := chooseAccess(ts, bound, s.noPushdown())
	s.recordPath(ts, plan)
	return plan, nil
}

// BindQuery substitutes bind variables throughout q — the driving WHERE
// clause, conditional constructors, and nested subqueries — returning a new
// Query that shares every unmodified subtree with the original. An unbound
// placeholder is an error wrapping relstore.ErrUnboundParam.
func BindQuery(q *Query, params map[string]relstore.Value) (*Query, error) {
	where, err := relstore.BindPreds(q.Where, params)
	if err != nil {
		return nil, err
	}
	body, err := bindXML(q.Body, params)
	if err != nil {
		return nil, err
	}
	if !relstore.HasParams(q.Where) && body == q.Body {
		return q, nil
	}
	cp := *q
	cp.Where = where
	cp.Body = body
	return &cp, nil
}

// bindXML substitutes bind variables inside an XML construction tree
// (Cond predicates and SubQuery WHERE clauses), copy-on-write: subtrees
// without placeholders are returned as-is, shared with the compiled plan.
func bindXML(x XMLExpr, params map[string]relstore.Value) (XMLExpr, error) {
	switch e := x.(type) {
	case *Element:
		kids, changed, err := bindList(e.Children, params)
		if err != nil {
			return nil, err
		}
		if !changed {
			return e, nil
		}
		cp := *e
		cp.Children = kids
		return &cp, nil
	case *Concat:
		items, changed, err := bindList(e.Items, params)
		if err != nil {
			return nil, err
		}
		if !changed {
			return e, nil
		}
		return &Concat{Items: items}, nil
	case *Agg:
		sub, err := bindSub(e.Sub, params)
		if err != nil {
			return nil, err
		}
		if sub == e.Sub {
			return e, nil
		}
		return &Agg{Sub: sub}, nil
	case *ScalarAgg:
		sub, err := bindSub(e.Sub, params)
		if err != nil {
			return nil, err
		}
		if sub == e.Sub {
			return e, nil
		}
		cp := *e
		cp.Sub = sub
		return &cp, nil
	case *Cond:
		preds, err := relstore.BindPreds(e.Preds, params)
		if err != nil {
			return nil, err
		}
		then, err := bindXML(e.Then, params)
		if err != nil {
			return nil, err
		}
		els := e.Else
		if els != nil {
			if els, err = bindXML(els, params); err != nil {
				return nil, err
			}
		}
		if !relstore.HasParams(e.Preds) && then == e.Then && els == e.Else {
			return e, nil
		}
		return &Cond{Preds: preds, Then: then, Else: els}, nil
	default:
		// Column, Literal: no predicates to bind.
		return x, nil
	}
}

func bindList(xs []XMLExpr, params map[string]relstore.Value) ([]XMLExpr, bool, error) {
	changed := false
	out := xs
	for i, x := range xs {
		b, err := bindXML(x, params)
		if err != nil {
			return nil, false, err
		}
		if b != x && !changed {
			changed = true
			out = make([]XMLExpr, len(xs))
			copy(out, xs)
		}
		if changed {
			out[i] = b
		}
	}
	return out, changed, nil
}

func bindSub(s *SubQuery, params map[string]relstore.Value) (*SubQuery, error) {
	where, err := relstore.BindPreds(s.Where, params)
	if err != nil {
		return nil, err
	}
	body := s.Body
	if body != nil {
		if body, err = bindXML(body, params); err != nil {
			return nil, err
		}
	}
	if !relstore.HasParams(s.Where) && body == s.Body {
		return s, nil
	}
	cp := *s
	cp.Where = where
	cp.Body = body
	return &cp, nil
}

// OpenQueryCursorSpec is the spec-carrying form of OpenQueryCursor: the
// driving access path is planned from the compiled WHERE clause plus the
// spec's run-time predicates, with parameters bound for this run only.
func (e *Executor) OpenQueryCursorSpec(q *Query, sink *relstore.Stats, g *governor.G, spec *RunSpec) (*QueryCursor, error) {
	snap := spec.snapshot(e.DB)
	ts := snap.Table(q.Table)
	if ts == nil {
		return nil, fmt.Errorf("sqlxml: query references unknown table %q", q.Table)
	}
	plan, err := spec.planDriving(ts, q.Where)
	if err != nil {
		return nil, err
	}
	body, err := bindXML(q.Body, spec.params())
	if err != nil {
		return nil, err
	}
	c := &QueryCursor{
		body: body,
		ts:   ts,
		it:   plan.OpenBatchAt(ts, sink, g, spec.batchOpts()),
		ec:   &evalContext{snap: snap, stats: sink, gov: g},
		fp:   "sqlxml.query.next",
	}
	spec.startOperators(ts, plan, c)
	return c, nil
}

// OpenViewCursorSpec is the spec-carrying form of OpenViewCursor, with an
// explicit set of driving predicates. The fallback execution strategies pass
// the compiled plan's WHERE clause here so a run that could not be lowered to
// SQL still filters (and index-probes) the driving table exactly like the
// SQL path would — cross-strategy result consistency.
func (e *Executor) OpenViewCursorSpec(v *ViewDef, where []relstore.Pred, sink *relstore.Stats, g *governor.G, spec *RunSpec) (*QueryCursor, error) {
	snap := spec.snapshot(e.DB)
	ts := snap.Table(v.Table)
	if ts == nil {
		return nil, fmt.Errorf("sqlxml: view %q references unknown table %q", v.Name, v.Table)
	}
	plan, err := spec.planDriving(ts, where)
	if err != nil {
		return nil, err
	}
	c := &QueryCursor{
		body: v.Body,
		ts:   ts,
		it:   plan.OpenBatchAt(ts, sink, g, spec.batchOpts()),
		ec:   &evalContext{snap: snap, stats: sink, gov: g},
		fp:   "sqlxml.view.row",
	}
	spec.startOperators(ts, plan, c)
	return c, nil
}

// MaterializeViewSpec materializes the view rows passing where under the
// given spec (see OpenViewCursorSpec).
func (e *Executor) MaterializeViewSpec(v *ViewDef, where []relstore.Pred, sink *relstore.Stats, g *governor.G, spec *RunSpec) ([]*xmltree.Node, error) {
	c, err := e.OpenViewCursorSpec(v, where, sink, g, spec)
	if err != nil {
		return nil, err
	}
	return drainCursor(c)
}

// ExplainQuerySpec describes the physical plan the spec would produce.
// Binding is lenient here: an unbound parameter renders as a :name bind
// variable instead of failing — the plan's shape does not depend on the
// value.
func (e *Executor) ExplainQuerySpec(q *Query, spec *RunSpec) string {
	snap := spec.snapshot(e.DB)
	ts := snap.Table(q.Table)
	if ts == nil {
		return "unknown table " + q.Table
	}
	preds := relstore.BindPredsPartial(spec.merged(q.Where), spec.params())
	plan := chooseAccess(ts, preds, spec.noPushdown())
	spec.recordPath(ts, plan)
	var sb strings.Builder
	sb.WriteString(plan.Explain(ts.Table()))
	explainSubqueries(e.DB, q.Body, &sb, "  ")
	return sb.String()
}

// ExplainViewSpec describes the driving access path the fallback strategies
// would use to materialize v under spec — the view-side counterpart of
// ExplainQuerySpec, with the same lenient parameter binding.
func (e *Executor) ExplainViewSpec(v *ViewDef, where []relstore.Pred, spec *RunSpec) string {
	snap := spec.snapshot(e.DB)
	ts := snap.Table(v.Table)
	if ts == nil {
		return "unknown table " + v.Table
	}
	preds := relstore.BindPredsPartial(spec.merged(where), spec.params())
	plan := chooseAccess(ts, preds, spec.noPushdown())
	spec.recordPath(ts, plan)
	return plan.Explain(ts.Table())
}

// ExecQueryParallelSpec is the spec-carrying form of ExecQueryParallel: the
// driving access path honors the spec, and every worker constructs from the
// run's bound body.
func (e *Executor) ExecQueryParallelSpec(q *Query, workers int, sink *relstore.Stats, g *governor.G, spec *RunSpec) ([]*xmltree.Node, error) {
	if workers < 2 {
		c, err := e.OpenQueryCursorSpec(q, sink, g, spec)
		if err != nil {
			return nil, err
		}
		return drainCursor(c)
	}
	snap := spec.snapshot(e.DB)
	ts := snap.Table(q.Table)
	if ts == nil {
		return nil, fmt.Errorf("sqlxml: query references unknown table %q", q.Table)
	}
	plan, err := spec.planDriving(ts, q.Where)
	if err != nil {
		return nil, err
	}
	body, err := bindXML(q.Body, spec.params())
	if err != nil {
		return nil, err
	}
	var scanSp, buildSp *obs.Span
	if sp := spec.span(); sp != nil {
		scanSp = sp.Start("scan")
		scanSp.SetAttr("path", plan.Explain(ts.Table()))
		scanSp.SetAttr("est_rows", plan.EstimateRows())
		scanSp.SetAttr("parallel_workers", workers)
		scanSp.SetAttr("batch_size", spec.batchOpts().Size())
		buildSp = sp.Start("construct")
	}
	scanStart := time.Now()
	it := plan.OpenBatchAt(ts, sink, g, spec.batchOpts())
	if scanSp != nil && plan.Kind == relstore.PathFullScan {
		w := 1
		if mw, ok := it.(interface{ ScanWorkers() int }); ok {
			w = mw.ScanWorkers()
		}
		scanSp.SetAttr("workers", w)
	}
	var ids []int
	var rowRefs [][]relstore.Value
	batch := relstore.GetBatch(spec.batchOpts().Size())
	for {
		if _, ok := it.NextBatch(batch); !ok {
			break
		}
		ids = append(ids, batch.IDs...)
		rowRefs = append(rowRefs, batch.Rows...)
	}
	relstore.PutBatch(batch)
	if scanSp != nil {
		scanSp.ObserveSince(scanStart)
		scanSp.AddRowsOut(int64(len(ids)))
		if ms, ok := it.(interface{ MorselsExecuted() int }); ok {
			if n := ms.MorselsExecuted(); n > 0 {
				scanSp.SetAttr("morsels", n)
			}
		}
	}
	if err := it.Err(); err != nil {
		scanSp.Fail(err)
		return nil, err
	}
	out := make([]*xmltree.Node, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, id := range ids {
		// Stop handing out work once the governor has a verdict; rows
		// already dispatched unwind through their own Tick checks.
		if err := g.Check(); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i, id int) {
			defer wg.Done()
			defer func() { <-sem }()
			// A panic on a worker goroutine would kill the process before
			// the facade's recovery could see it; convert it to this row's
			// error instead so the run fails like any other row failure.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("sqlxml: worker panic: %v", r)
				}
			}()
			if err := faultpoint.Hit("sqlxml.query.next"); err != nil {
				errs[i] = err
				return
			}
			var rowStart time.Time
			if buildSp != nil {
				rowStart = time.Now()
				buildSp.AddRowsIn(1)
			}
			ec := &evalContext{snap: snap, stats: sink, gov: g}
			ec.setRow(ts, id, rowRefs[i])
			doc := xmltree.NewDocument()
			if err := ec.evalInto(doc, body, ts, id); err != nil {
				errs[i] = err
				return
			}
			doc.Renumber()
			out[i] = doc
			if buildSp != nil {
				buildSp.ObserveSince(rowStart)
				buildSp.AddRowsOut(1)
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			buildSp.Fail(err)
			return nil, err
		}
	}
	return out, nil
}
