package xpath

// Predicate surfacing for the relational translator: a step predicate like
// [@id = $id] or [price > 100] is, relationally, a comparison between a
// column of the driving table and a constant (or bind variable). Conjuncts
// decomposes a predicate expression into that normal form so internal/xq2sql
// can lower it to relstore.Pred filters instead of evaluating it per node.

// Comparison is one relationally-lowerable conjunct of a step predicate: a
// simple operand (child element or attribute of the context node) compared
// against a constant or variable reference.
type Comparison struct {
	// Attr reports that the operand is an attribute (@name) rather than a
	// child element.
	Attr bool
	// Name is the operand's local name.
	Name string
	// Op is the comparison operator, normalized so the operand reads on the
	// left: "100 < price" surfaces as price > 100 with Flipped set.
	Op BinaryOp
	// Value is the right-hand side: NumberExpr, StringExpr or VarExpr.
	Value Expr
	// Flipped records that the source had the value on the left.
	Flipped bool
}

// String renders the comparison in normalized XPath form.
func (c Comparison) String() string {
	name := c.Name
	if c.Attr {
		name = "@" + name
	}
	return name + " " + c.Op.String() + " " + c.Value.String()
}

// Conjuncts decomposes a predicate expression into relational comparisons.
// It succeeds only when the whole expression is a conjunction ('and' tree)
// of simple comparisons — each comparing a one-step child/attribute path of
// the context node against a literal or variable. Any other shape (or,
// function calls, positional predicates, multi-step paths) returns ok=false
// and the caller must keep the predicate as a per-node filter.
func Conjuncts(e Expr) ([]Comparison, bool) {
	var out []Comparison
	if !gatherConjuncts(e, &out) {
		return nil, false
	}
	return out, true
}

func gatherConjuncts(e Expr, out *[]Comparison) bool {
	b, ok := e.(*BinaryExpr)
	if !ok {
		return false
	}
	if b.Op == OpAnd {
		return gatherConjuncts(b.L, out) && gatherConjuncts(b.R, out)
	}
	c, ok := comparison(b)
	if !ok {
		return false
	}
	*out = append(*out, c)
	return true
}

// comparison matches one operand-vs-value comparison, flipping the operator
// when the value is on the left.
func comparison(b *BinaryExpr) (Comparison, bool) {
	switch b.Op {
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
	default:
		return Comparison{}, false
	}
	if attr, name, ok := operand(b.L); ok {
		if v, ok := constValue(b.R); ok {
			return Comparison{Attr: attr, Name: name, Op: b.Op, Value: v}, true
		}
		return Comparison{}, false
	}
	if attr, name, ok := operand(b.R); ok {
		if v, ok := constValue(b.L); ok {
			return Comparison{Attr: attr, Name: name, Op: flipCmp(b.Op), Value: v, Flipped: true}, true
		}
	}
	return Comparison{}, false
}

// operand matches a one-step relative path selecting a named child element
// or attribute of the context node, with no predicates of its own.
func operand(e Expr) (attr bool, name string, ok bool) {
	p, isPath := e.(*PathExpr)
	if !isPath || p.Abs || p.Start != nil || len(p.Steps) != 1 {
		return false, "", false
	}
	s := p.Steps[0]
	if s.Test.Kind != TestName || s.Test.Prefix != "" || len(s.Preds) != 0 {
		return false, "", false
	}
	switch s.Axis {
	case AxisChild:
		return false, s.Test.Name, true
	case AxisAttribute:
		return true, s.Test.Name, true
	}
	return false, "", false
}

// constValue matches a run-time-constant right-hand side: a literal or a
// variable reference (bound at execution time, constant per run).
func constValue(e Expr) (Expr, bool) {
	switch v := e.(type) {
	case NumberExpr, StringExpr, VarExpr:
		return v, true
	case *NegExpr:
		if n, ok := v.X.(NumberExpr); ok {
			return NumberExpr(-float64(n)), true
		}
	}
	return nil, false
}

// flipCmp mirrors a comparison operator across its operands: a < b ⇔ b > a.
func flipCmp(op BinaryOp) BinaryOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // = and != are symmetric
}
