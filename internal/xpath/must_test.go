package xpath

// Test-only parse helpers. The production API returns errors; tests with
// compiled-in expressions use these and treat a parse failure as a bug.

func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func MustParsePattern(src string) *Pattern {
	p, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}
