package xpath

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Value is the dynamic result of evaluating an XPath expression: one of
// bool, float64, string or NodeSet (the four XPath 1.0 types).
type Value any

// NodeSet is an ordered set of nodes. Evaluation keeps node-sets in document
// order without duplicates.
type NodeSet []*xmltree.Node

// ToBool converts a value to boolean per the XPath boolean() rules.
func ToBool(v Value) bool {
	switch x := v.(type) {
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	case NodeSet:
		return len(x) > 0
	case nil:
		return false
	}
	return false
}

// ToNumber converts a value to float64 per the XPath number() rules
// (NaN for non-numeric strings and empty node-sets).
func ToNumber(v Value) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
		return 0
	case string:
		return stringToNumber(x)
	case NodeSet:
		if len(x) == 0 {
			return math.NaN()
		}
		return stringToNumber(x[0].StringValue())
	}
	return math.NaN()
}

func stringToNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// ToString converts a value to string per the XPath string() rules
// (the string value of the first node for node-sets).
func ToString(v Value) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return NumberToString(x)
	case NodeSet:
		if len(x) == 0 {
			return ""
		}
		return x[0].StringValue()
	case nil:
		return ""
	}
	return fmt.Sprint(v)
}

// NumberToString formats a float64 following the XPath 1.0 rules: integers
// print without a decimal point, NaN prints "NaN", infinities print
// "Infinity"/"-Infinity".
func NumberToString(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// ToNodeSet converts a value to a node-set, failing for the scalar types
// (XPath 1.0 has no scalar→node-set conversion).
func ToNodeSet(v Value) (NodeSet, error) {
	if ns, ok := v.(NodeSet); ok {
		return ns, nil
	}
	return nil, fmt.Errorf("xpath: cannot convert %T to a node-set", v)
}

// compareValues implements the XPath 1.0 comparison semantics, including the
// existential semantics when one or both operands are node-sets.
func compareValues(op BinaryOp, l, r Value) bool {
	ln, lok := l.(NodeSet)
	rn, rok := r.(NodeSet)
	switch {
	case lok && rok:
		for _, a := range ln {
			for _, b := range rn {
				if compareScalar(op, a.StringValue(), b.StringValue()) {
					return true
				}
			}
		}
		return false
	case lok:
		for _, a := range ln {
			if compareMixed(op, a, r, false) {
				return true
			}
		}
		return false
	case rok:
		for _, b := range rn {
			if compareMixed(op, b, l, true) {
				return true
			}
		}
		return false
	default:
		return compareScalarValues(op, l, r)
	}
}

// compareMixed compares node against a scalar; flipped reverses operand
// order (scalar op node).
func compareMixed(op BinaryOp, node *xmltree.Node, scalar Value, flipped bool) bool {
	sv := node.StringValue()
	var l, r Value = sv, scalar
	if flipped {
		l, r = scalar, sv
	}
	return compareScalarValues(op, l, r)
}

func compareScalarValues(op BinaryOp, l, r Value) bool {
	switch op {
	case OpEq, OpNeq:
		var eq bool
		switch {
		case isBool(l) || isBool(r):
			eq = ToBool(l) == ToBool(r)
		case isNumber(l) || isNumber(r):
			eq = ToNumber(l) == ToNumber(r)
		default:
			eq = ToString(l) == ToString(r)
		}
		if op == OpEq {
			return eq
		}
		return !eq
	default:
		return compareNumbers(op, ToNumber(l), ToNumber(r))
	}
}

// compareScalar compares two strings under op with XPath coercion
// (relational ops go through number()).
func compareScalar(op BinaryOp, a, b string) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNeq:
		return a != b
	default:
		return compareNumbers(op, stringToNumber(a), stringToNumber(b))
	}
}

func compareNumbers(op BinaryOp, a, b float64) bool {
	switch op {
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	case OpEq:
		return a == b
	case OpNeq:
		return a != b
	}
	return false
}

func isBool(v Value) bool   { _, ok := v.(bool); return ok }
func isNumber(v Value) bool { _, ok := v.(float64); return ok }
