package xpath

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// FuzzParse asserts the expression parser never panics or hangs: any input
// either parses or returns a *SyntaxError with position info. Parsed
// expressions additionally get one evaluation pass over a tiny document —
// the evaluator must contain whatever the parser accepted.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"/dept/emp",
		"//emp[sal > 2000]/ename",
		"count(emp) * 2 + 1",
		"concat('a', \"b\", string(1.5))",
		"substring-before($var, '-')",
		"emp[position() = last()]",
		"../@id | node() | text()",
		"-(-3) mod 2",
		"translate($s, $f, $t)",
		"processing-instruction(\"t\")",
		"((((((((((1))))))))))",
		strings.Repeat("(", 600),
		strings.Repeat("-", 600) + "1",
		"a/" + strings.Repeat("b/", 200) + "c",
		"emp[",
		"@",
		"1.5.5",
		"'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc, err := xmltree.Parse(`<dept><emp><ename>x</ename><sal>10</sal></emp></dept>`)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			if se, ok := err.(*SyntaxError); ok && se.Pos > len(src) {
				t.Fatalf("SyntaxError position %d beyond input length %d", se.Pos, len(src))
			}
			return
		}
		ctx := NewContext(doc)
		ctx.Vars = VarMap{"var": "v", "s": "abc", "f": "a", "t": "b"}
		_, _ = Eval(e, ctx) // must not panic
	})
}

// FuzzParsePattern asserts the pattern parser never panics: any input
// either parses — and then must survive a match attempt and a priority
// computation per alternative — or returns an error.
func FuzzParsePattern(f *testing.F) {
	seeds := []string{
		"dept",
		"emp/empno",
		"//emp",
		"/",
		"dname | loc|emp",
		"emp[sal > 2000]",
		"@id",
		"@*",
		"text()",
		"processing-instruction('t')",
		"xsl:*",
		"a/b/c/d/e/f",
		"a[",
		"|",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc, err := xmltree.Parse(`<dept><emp empno="1"/></dept>`)
	if err != nil {
		f.Fatal(err)
	}
	node := doc.Children[0].Children[0]
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePattern(src)
		if err != nil {
			return
		}
		_, _ = p.Matches(node, nil)
		for _, alt := range p.SplitUnion() {
			if _, err := alt.DefaultPriority(); err != nil {
				t.Fatalf("single-alternative pattern %q: DefaultPriority: %v", alt.String(), err)
			}
		}
	})
}
