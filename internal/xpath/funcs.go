package xpath

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/xmltree"
)

// evalFunc dispatches a function call: the XPath 1.0 core library first,
// then any extension resolver installed on the context. Function names may
// carry an "fn:" prefix (the XQuery spelling) which resolves to the same
// core library.
func evalFunc(e *FuncExpr, ctx *Context) (Value, error) {
	name := strings.TrimPrefix(e.Name, "fn:")
	if f, ok := coreFunctions[name]; ok {
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := Eval(a, ctx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return f(ctx, e, args)
	}
	if ctx.Funcs != nil {
		if f, ok := ctx.Funcs(e.Name); ok {
			args := make([]Value, len(e.Args))
			for i, a := range e.Args {
				v, err := Eval(a, ctx)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			return f(ctx, args)
		}
	}
	return nil, fmt.Errorf("xpath: unknown function %s()", e.Name)
}

type coreFunc func(ctx *Context, call *FuncExpr, args []Value) (Value, error)

func argc(call *FuncExpr, min, max int) error {
	n := len(call.Args)
	if n < min || (max >= 0 && n > max) {
		return fmt.Errorf("xpath: wrong number of arguments to %s(): got %d", call.Name, n)
	}
	return nil
}

// contextNodeSet returns the implicit node-set argument: the context node.
func contextNodeSet(ctx *Context) NodeSet { return NodeSet{ctx.Node} }

var coreFunctions map[string]coreFunc

func init() {
	coreFunctions = map[string]coreFunc{
		// Node-set functions.
		"last": func(ctx *Context, call *FuncExpr, _ []Value) (Value, error) {
			if err := argc(call, 0, 0); err != nil {
				return nil, err
			}
			return float64(ctx.Size), nil
		},
		"position": func(ctx *Context, call *FuncExpr, _ []Value) (Value, error) {
			if err := argc(call, 0, 0); err != nil {
				return nil, err
			}
			return float64(ctx.Position), nil
		},
		"count": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 1, 1); err != nil {
				return nil, err
			}
			ns, err := ToNodeSet(args[0])
			if err != nil {
				return nil, err
			}
			return float64(len(ns)), nil
		},
		"local-name": nameFunc(func(n *xmltree.Node) string { return n.Name }),
		"name":       nameFunc(func(n *xmltree.Node) string { return n.QName() }),
		"namespace-uri": nameFunc(func(n *xmltree.Node) string {
			return n.NamespaceURI
		}),
		"current": func(ctx *Context, call *FuncExpr, _ []Value) (Value, error) {
			if err := argc(call, 0, 0); err != nil {
				return nil, err
			}
			if ctx.Current != nil {
				return NodeSet{ctx.Current}, nil
			}
			return NodeSet{ctx.Node}, nil
		},

		// String functions.
		"string": func(ctx *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 0, 1); err != nil {
				return nil, err
			}
			if len(args) == 0 {
				return ctx.Node.StringValue(), nil
			}
			return ToString(args[0]), nil
		},
		"concat": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 2, -1); err != nil {
				return nil, err
			}
			var sb strings.Builder
			for _, a := range args {
				sb.WriteString(ToString(a))
			}
			return sb.String(), nil
		},
		"starts-with": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 2, 2); err != nil {
				return nil, err
			}
			return strings.HasPrefix(ToString(args[0]), ToString(args[1])), nil
		},
		"contains": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 2, 2); err != nil {
				return nil, err
			}
			return strings.Contains(ToString(args[0]), ToString(args[1])), nil
		},
		"substring-before": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 2, 2); err != nil {
				return nil, err
			}
			s, sep := ToString(args[0]), ToString(args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return s[:i], nil
			}
			return "", nil
		},
		"substring-after": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 2, 2); err != nil {
				return nil, err
			}
			s, sep := ToString(args[0]), ToString(args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return s[i+len(sep):], nil
			}
			return "", nil
		},
		"substring": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 2, 3); err != nil {
				return nil, err
			}
			return substring(ToString(args[0]), ToNumber(args[1]), args[2:]), nil
		},
		"string-length": func(ctx *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 0, 1); err != nil {
				return nil, err
			}
			s := ""
			if len(args) == 0 {
				s = ctx.Node.StringValue()
			} else {
				s = ToString(args[0])
			}
			return float64(len([]rune(s))), nil
		},
		"normalize-space": func(ctx *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 0, 1); err != nil {
				return nil, err
			}
			s := ""
			if len(args) == 0 {
				s = ctx.Node.StringValue()
			} else {
				s = ToString(args[0])
			}
			return strings.Join(strings.Fields(s), " "), nil
		},
		"translate": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 3, 3); err != nil {
				return nil, err
			}
			return translate(ToString(args[0]), ToString(args[1]), ToString(args[2])), nil
		},

		// Boolean functions.
		"boolean": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 1, 1); err != nil {
				return nil, err
			}
			return ToBool(args[0]), nil
		},
		"not": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 1, 1); err != nil {
				return nil, err
			}
			return !ToBool(args[0]), nil
		},
		"true": func(_ *Context, call *FuncExpr, _ []Value) (Value, error) {
			if err := argc(call, 0, 0); err != nil {
				return nil, err
			}
			return true, nil
		},
		"false": func(_ *Context, call *FuncExpr, _ []Value) (Value, error) {
			if err := argc(call, 0, 0); err != nil {
				return nil, err
			}
			return false, nil
		},

		// Number functions.
		"number": func(ctx *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 0, 1); err != nil {
				return nil, err
			}
			if len(args) == 0 {
				return ToNumber(NodeSet{ctx.Node}), nil
			}
			return ToNumber(args[0]), nil
		},
		"sum": func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
			if err := argc(call, 1, 1); err != nil {
				return nil, err
			}
			ns, err := ToNodeSet(args[0])
			if err != nil {
				return nil, err
			}
			total := 0.0
			for _, n := range ns {
				total += stringToNumber(n.StringValue())
			}
			return total, nil
		},
		"floor":   numFunc(math.Floor),
		"ceiling": numFunc(math.Ceil),
		"round": numFunc(func(f float64) float64 {
			// XPath round: round half towards positive infinity.
			return math.Floor(f + 0.5)
		}),
	}
}

func nameFunc(get func(*xmltree.Node) string) coreFunc {
	return func(ctx *Context, call *FuncExpr, args []Value) (Value, error) {
		if err := argc(call, 0, 1); err != nil {
			return nil, err
		}
		ns := contextNodeSet(ctx)
		if len(args) == 1 {
			var err error
			ns, err = ToNodeSet(args[0])
			if err != nil {
				return nil, err
			}
		}
		if len(ns) == 0 {
			return "", nil
		}
		return get(ns[0]), nil
	}
}

func numFunc(f func(float64) float64) coreFunc {
	return func(_ *Context, call *FuncExpr, args []Value) (Value, error) {
		if err := argc(call, 1, 1); err != nil {
			return nil, err
		}
		return f(ToNumber(args[0])), nil
	}
}

// substring implements the XPath substring() rounding rules over runes.
func substring(s string, start float64, rest []Value) string {
	runes := []rune(s)
	if math.IsNaN(start) {
		return ""
	}
	begin := int(math.Floor(start + 0.5)) // round()
	end := len(runes) + 1
	if len(rest) == 1 {
		length := ToNumber(rest[0])
		if math.IsNaN(length) {
			return ""
		}
		end = begin + int(math.Floor(length+0.5))
	}
	if begin < 1 {
		begin = 1
	}
	if end > len(runes)+1 {
		end = len(runes) + 1
	}
	if begin >= end {
		return ""
	}
	return string(runes[begin-1 : end-1])
}

// translate implements XPath translate(): map characters of from to the
// corresponding characters of to, deleting those with no correspondent.
func translate(s, from, to string) string {
	fromR := []rune(from)
	toR := []rune(to)
	m := make(map[rune]rune, len(fromR))
	del := make(map[rune]bool)
	for i, r := range fromR {
		if _, seen := m[r]; seen || del[r] {
			continue // first occurrence wins
		}
		if i < len(toR) {
			m[r] = toR[i]
		} else {
			del[r] = true
		}
	}
	var sb strings.Builder
	for _, r := range s {
		if del[r] {
			continue
		}
		if repl, ok := m[r]; ok {
			sb.WriteRune(repl)
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}
