package xpath

import (
	"fmt"
)

// Parse parses an XPath 1.0 expression.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// maxParseDepth bounds parser recursion so hostile inputs (a kilobyte of
// "((((" or "----") surface a SyntaxError instead of exhausting the
// goroutine stack. Real-world XPath nests a handful of levels.
const maxParseDepth = 512

type exprParser struct {
	src   string
	toks  []token
	pos   int
	depth int
}

// enter charges one level of parser recursion; leave releases it.
func (p *exprParser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf("expression nests deeper than %d levels", maxParseDepth)
	}
	return nil
}

func (p *exprParser) leave() { p.depth-- }

func (p *exprParser) peek() token { return p.toks[p.pos] }
func (p *exprParser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}
func (p *exprParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *exprParser) errf(format string, args ...any) error {
	return &SyntaxError{Expr: p.src, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *exprParser) expect(k tokenKind, what string) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

// parseExpr parses the full expression grammar (OrExpr at the top).
func (p *exprParser) parseExpr() (Expr, error) {
	return p.parseBinary(1)
}

type opEntry struct {
	op   BinaryOp
	prec int
}

// operatorAt reports the binary operator at the current token, if any.
// Operator names ("and", "or", "div", "mod", "*") are only operators when an
// operand precedes them; the caller guarantees that by asking after parsing
// a left operand.
func (p *exprParser) operatorAt() (opEntry, bool) {
	switch p.peek().kind {
	case tokPipe:
		return opEntry{OpUnion, 7}, true
	case tokStar:
		return opEntry{OpMul, 6}, true
	case tokPlus:
		return opEntry{OpAdd, 5}, true
	case tokMinus:
		return opEntry{OpSub, 5}, true
	case tokEq:
		return opEntry{OpEq, 3}, true
	case tokNeq:
		return opEntry{OpNeq, 3}, true
	case tokLt:
		return opEntry{OpLt, 4}, true
	case tokLe:
		return opEntry{OpLe, 4}, true
	case tokGt:
		return opEntry{OpGt, 4}, true
	case tokGe:
		return opEntry{OpGe, 4}, true
	case tokName:
		switch p.peek().text {
		case "and":
			return opEntry{OpAnd, 2}, true
		case "or":
			return opEntry{OpOr, 1}, true
		case "div":
			return opEntry{OpDiv, 6}, true
		case "mod":
			return opEntry{OpMod, 6}, true
		}
	}
	return opEntry{}, false
}

// parseBinary is a precedence-climbing parser over the operator table.
func (p *exprParser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		entry, ok := p.operatorAt()
		if !ok || entry.prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(entry.prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: entry.op, L: left, R: right}
	}
}

// parseUnary sits on every recursion cycle through the grammar (parens,
// predicates, function arguments, unary minus), so the depth guard here
// bounds them all.
func (p *exprParser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.peek().kind == tokMinus {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{X: x}, nil
	}
	return p.parsePath()
}

// parsePath parses PathExpr: either a location path, or a filter expression
// optionally followed by '/' RelativeLocationPath.
func (p *exprParser) parsePath() (Expr, error) {
	t := p.peek()

	// Primary expressions that can start a FilterExpr.
	isPrimary := false
	switch t.kind {
	case tokNumber, tokLiteral, tokVariable, tokLParen:
		isPrimary = true
	case tokName:
		// A function call — unless it is a node-type test or an axis name.
		if p.peek2().kind == tokLParen && !isNodeTypeName(t.text) {
			isPrimary = true
		}
		// QName function like fn:string(...)
		if p.peek2().kind == tokColon {
			if p.pos+3 < len(p.toks) && p.toks[p.pos+2].kind == tokName && p.toks[p.pos+3].kind == tokLParen {
				isPrimary = true
			}
		}
	}

	if isPrimary {
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var preds []Expr
		for p.peek().kind == tokLBracket {
			p.next()
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			preds = append(preds, pred)
		}
		if p.peek().kind != tokSlash && p.peek().kind != tokSlashSlash {
			if len(preds) == 0 {
				return prim, nil
			}
			return &PathExpr{Start: prim, StartPreds: preds}, nil
		}
		path := &PathExpr{Start: prim, StartPreds: preds}
		if p.peek().kind == tokSlashSlash {
			p.next()
			path.Steps = append(path.Steps, descendantOrSelfStep())
		} else {
			p.next()
		}
		if err := p.parseRelativePath(path); err != nil {
			return nil, err
		}
		return path, nil
	}

	// Location path.
	path := &PathExpr{}
	switch t.kind {
	case tokSlash:
		p.next()
		path.Abs = true
		if !p.startsStep() {
			return path, nil // bare "/"
		}
	case tokSlashSlash:
		p.next()
		path.Abs = true
		path.Steps = append(path.Steps, descendantOrSelfStep())
	}
	if err := p.parseRelativePath(path); err != nil {
		return nil, err
	}
	return path, nil
}

func descendantOrSelfStep() *Step {
	return &Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}}
}

func (p *exprParser) startsStep() bool {
	switch p.peek().kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *exprParser) parseRelativePath(path *PathExpr) error {
	for {
		step, err := p.parseStep()
		if err != nil {
			return err
		}
		path.Steps = append(path.Steps, step)
		switch p.peek().kind {
		case tokSlash:
			p.next()
		case tokSlashSlash:
			p.next()
			path.Steps = append(path.Steps, descendantOrSelfStep())
		default:
			return nil
		}
	}
}

func (p *exprParser) parseStep() (*Step, error) {
	t := p.peek()
	switch t.kind {
	case tokDot:
		p.next()
		return &Step{Axis: AxisSelf, Test: NodeTest{Kind: TestNode}}, nil
	case tokDotDot:
		p.next()
		return &Step{Axis: AxisParent, Test: NodeTest{Kind: TestNode}}, nil
	}

	step := &Step{Axis: AxisChild}
	switch t.kind {
	case tokAt:
		p.next()
		step.Axis = AxisAttribute
	case tokName:
		if p.peek2().kind == tokColonColon {
			ax, ok := axisNames[t.text]
			if !ok {
				return nil, p.errf("unknown axis %q", t.text)
			}
			p.next()
			p.next()
			step.Axis = ax
		}
	}

	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	step.Test = test

	for p.peek().kind == tokLBracket {
		p.next()
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func isNodeTypeName(name string) bool {
	switch name {
	case "text", "comment", "processing-instruction", "node":
		return true
	}
	return false
}

func (p *exprParser) parseNodeTest() (NodeTest, error) {
	t := p.peek()
	switch t.kind {
	case tokStar:
		p.next()
		return NodeTest{Kind: TestAnyName}, nil
	case tokName:
		name := t.text
		if isNodeTypeName(name) && p.peek2().kind == tokLParen {
			p.next() // name
			p.next() // (
			nt := NodeTest{}
			switch name {
			case "text":
				nt.Kind = TestText
			case "comment":
				nt.Kind = TestComment
			case "node":
				nt.Kind = TestNode
			case "processing-instruction":
				nt.Kind = TestPI
				if p.peek().kind == tokLiteral {
					nt.Name = p.next().text
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return NodeTest{}, err
			}
			return nt, nil
		}
		p.next()
		if p.peek().kind == tokColon {
			p.next()
			switch p.peek().kind {
			case tokStar:
				p.next()
				return NodeTest{Kind: TestNSName, Prefix: name}, nil
			case tokName:
				local := p.next().text
				return NodeTest{Kind: TestName, Prefix: name, Name: local}, nil
			default:
				return NodeTest{}, p.errf("expected local name after %q:", name)
			}
		}
		return NodeTest{Kind: TestName, Name: name}, nil
	}
	return NodeTest{}, p.errf("expected a node test, found %s", t)
}

func (p *exprParser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return NumberExpr(t.num), nil
	case tokLiteral:
		p.next()
		return StringExpr(t.text), nil
	case tokVariable:
		p.next()
		return VarExpr(t.text), nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		name := t.text
		p.next()
		if p.peek().kind == tokColon {
			p.next()
			local, err := p.expect(tokName, "function local name")
			if err != nil {
				return nil, err
			}
			name = name + ":" + local.text
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		call := &FuncExpr{Name: name}
		if p.peek().kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return call, nil
	}
	return nil, p.errf("unexpected %s", t)
}
