package xpath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

// genExpr builds a random XPath AST of bounded depth. The generator covers
// every node type the printer can emit, so the property test exercises the
// printer/parser pair broadly.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return NumberExpr(float64(rng.Intn(1000)))
		case 1:
			return StringExpr([]string{"a", "CLARK", "x y", "2000"}[rng.Intn(4)])
		case 2:
			return VarExpr([]string{"v", "threshold", "var001"}[rng.Intn(3)])
		default:
			return genPath(rng, 0)
		}
	}
	switch rng.Intn(6) {
	case 0:
		ops := []BinaryOp{OpOr, OpAnd, OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpUnion}
		op := ops[rng.Intn(len(ops))]
		l := genExpr(rng, depth-1)
		r := genExpr(rng, depth-1)
		if op == OpUnion {
			// Union operands must be node-sets.
			l = genPath(rng, depth-1)
			r = genPath(rng, depth-1)
		}
		return &BinaryExpr{Op: op, L: l, R: r}
	case 1:
		return &NegExpr{X: genExpr(rng, depth-1)}
	case 2:
		names := []string{"count", "not", "boolean", "string", "number"}
		return &FuncExpr{Name: names[rng.Intn(len(names))], Args: []Expr{genExpr(rng, depth-1)}}
	case 3:
		return &FuncExpr{Name: "concat", Args: []Expr{genExpr(rng, depth-1), genExpr(rng, depth-1)}}
	default:
		return genPath(rng, depth-1)
	}
}

func genPath(rng *rand.Rand, depth int) Expr {
	p := &PathExpr{Abs: rng.Intn(3) == 0}
	names := []string{"dept", "emp", "sal", "dname", "employees"}
	nSteps := 1 + rng.Intn(3)
	for i := 0; i < nSteps; i++ {
		axes := []Axis{AxisChild, AxisChild, AxisChild, AxisDescendantOrSelf, AxisAttribute, AxisParent, AxisSelf}
		step := &Step{Axis: axes[rng.Intn(len(axes))]}
		switch rng.Intn(5) {
		case 0:
			step.Test = NodeTest{Kind: TestAnyName}
		case 1:
			step.Test = NodeTest{Kind: TestText}
		case 2:
			step.Test = NodeTest{Kind: TestNode}
		default:
			step.Test = NodeTest{Kind: TestName, Name: names[rng.Intn(len(names))]}
		}
		// Parent/self axes only combine with node() in the abbreviated
		// forms the printer uses; keep those combinations printable.
		if step.Axis == AxisParent || step.Axis == AxisSelf {
			step.Test = NodeTest{Kind: TestNode}
		}
		if step.Axis == AxisAttribute && step.Test.Kind != TestName && step.Test.Kind != TestAnyName {
			step.Test = NodeTest{Kind: TestAnyName}
		}
		if depth > 0 && rng.Intn(3) == 0 {
			step.Preds = append(step.Preds, genExpr(rng, depth-1))
		}
		p.Steps = append(p.Steps, step)
	}
	return p
}

// TestQuickPrintParseEval: printing a random expression and re-parsing it
// yields an expression with identical evaluation behaviour.
func TestQuickPrintParseEval(t *testing.T) {
	doc, err := xmltree.Parse(deptDoc)
	if err != nil {
		t.Fatal(err)
	}
	vars := VarMap{
		"v":         float64(1),
		"threshold": float64(2000),
		"var001":    NodeSet{doc.DocumentElement()},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 3)
		printed := e.String()
		re, err := Parse(printed)
		if err != nil {
			t.Logf("seed %d: %q does not re-parse: %v", seed, printed, err)
			return false
		}
		ctx1 := NewContext(doc)
		ctx1.Vars = vars
		ctx2 := NewContext(doc)
		ctx2.Vars = vars
		v1, err1 := Eval(e, ctx1)
		v2, err2 := Eval(re, ctx2)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: %q error mismatch: %v vs %v", seed, printed, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if ToString(v1) != ToString(v2) {
			t.Logf("seed %d: %q evaluates differently: %q vs %q", seed, printed, ToString(v1), ToString(v2))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPatternMatchSubsetOfEval: for single-step name patterns, pattern
// matching must agree with evaluating the same name as a select from the
// parent.
func TestQuickPatternMatchSubsetOfEval(t *testing.T) {
	doc, err := xmltree.Parse(deptDoc)
	if err != nil {
		t.Fatal(err)
	}
	var all []*xmltree.Node
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		for _, c := range n.Children {
			if c.Kind == xmltree.ElementNode {
				all = append(all, c)
				walk(c)
			}
		}
	}
	walk(doc)
	names := []string{"dept", "dname", "loc", "employees", "emp", "empno", "ename", "sal", "nothere"}
	for _, name := range names {
		pat := MustParsePattern(name)
		for _, n := range all {
			got, err := pat.Matches(n, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := n.Name == name
			if got != want {
				t.Fatalf("pattern %q on <%s>: %v, want %v", name, n.Name, got, want)
			}
		}
	}
}

// TestPathPrintingShapes pins the '//' abbreviation behaviour exactly
// (string-level, not just evaluation-level).
func TestPathPrintingShapes(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a//b", "a//b"},
		{"//a", "//a"},
		{"/a//b/c", "/a//b/c"},
		{"$v//x", "$v//x"},
		{".//title", ".//title"},
		{"a/descendant-or-self::node()", "a/descendant-or-self::node()"}, // trailing: full form
		{"descendant-or-self::node()[1]/x", "descendant-or-self::node()[1]/x"},
	}
	for _, tc := range cases {
		e := MustParse(tc.src)
		if got := e.String(); got != tc.want {
			t.Errorf("String(%q) = %q, want %q", tc.src, got, tc.want)
		}
		if _, err := Parse(e.String()); err != nil {
			t.Errorf("%q does not re-parse: %v", e.String(), err)
		}
	}
}
