// Package xpath implements an XPath 1.0 subset: lexer, parser, evaluator
// over xmltree documents, the core function library, and XSLT match patterns
// with the XSLT 1.0 default-priority rules.
//
// The subset covers everything the XSLT/XQuery engines in this repository
// need: all 13 axes except the namespace axis, full expression grammar
// (union, boolean, relational, arithmetic, path and filter expressions),
// variables, and the XPath 1.0 core function library.
package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF  tokenKind = iota
	tokName           // NCName (possibly the first half of a QName)
	tokNumber
	tokLiteral  // quoted string
	tokVariable // $name
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokDot
	tokDotDot
	tokAt
	tokComma
	tokColonColon
	tokStar
	tokSlash
	tokSlashSlash
	tokPipe
	tokPlus
	tokMinus
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokColon // inside QName
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokLiteral:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexical or grammatical error in an XPath expression.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Expr: l.src, Pos: l.pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "//":
		l.pos += 2
		return token{kind: tokSlashSlash, text: "//", pos: start}, nil
	case two == "..":
		l.pos += 2
		return token{kind: tokDotDot, text: "..", pos: start}, nil
	case two == "::":
		l.pos += 2
		return token{kind: tokColonColon, text: "::", pos: start}, nil
	case two == "!=":
		l.pos += 2
		return token{kind: tokNeq, text: "!=", pos: start}, nil
	case two == "<=":
		l.pos += 2
		return token{kind: tokLe, text: "<=", pos: start}, nil
	case two == ">=":
		l.pos += 2
		return token{kind: tokGe, text: ">=", pos: start}, nil
	}
	switch c {
	case '/':
		l.pos++
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case '@':
		l.pos++
		return token{kind: tokAt, text: "@", pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokPipe, text: "|", pos: start}, nil
	case '+':
		l.pos++
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case '-':
		l.pos++
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '<':
		l.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case '>':
		l.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case ':':
		l.pos++
		return token{kind: tokColon, text: ":", pos: start}, nil
	case '.':
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case '"', '\'':
		quote := c
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], quote)
		if end < 0 {
			return token{}, l.errf("unterminated string literal")
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokLiteral, text: text, pos: start}, nil
	case '$':
		l.pos++
		name, err := l.lexName()
		if err != nil {
			return token{}, err
		}
		return token{kind: tokVariable, text: name, pos: start}, nil
	}
	if isDigit(c) {
		return l.lexNumber()
	}
	if r, _ := utf8.DecodeRuneInString(l.src[l.pos:]); isNameStartRune(r) {
		name, err := l.lexName()
		if err != nil {
			return token{}, err
		}
		return token{kind: tokName, text: name, pos: start}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	num, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf("bad number %q", text)
	}
	return token{kind: tokNumber, text: text, num: num, pos: start}, nil
}

// lexName reads an NCName. QNames are assembled by the parser from
// NCName ':' NCName so that axis specifiers (name '::') still lex cleanly.
func (l *lexer) lexName() (string, error) {
	start := l.pos
	r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
	if sz == 0 || !isNameStartRune(r) {
		return "", l.errf("expected a name")
	}
	l.pos += sz
	for l.pos < len(l.src) {
		r, sz = utf8.DecodeRuneInString(l.src[l.pos:])
		if !isNameRune(r) {
			break
		}
		l.pos += sz
	}
	return l.src[start:l.pos], nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStartRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameRune(r rune) bool {
	return isNameStartRune(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}
