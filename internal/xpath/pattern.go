package xpath

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// Pattern is a parsed XSLT match pattern: a union of location path patterns.
// Patterns are matched right-to-left ("reversed evaluation", Moerkotte [6] /
// Fokoue et al. [9]): the candidate node must satisfy the last step, its
// parent chain must satisfy the remaining steps.
type Pattern struct {
	Alternatives []*PathPattern
	src          string
}

// PathPattern is one alternative of a pattern.
type PathPattern struct {
	// Root marks a pattern anchored at the document root ("/" or "/a/b").
	Root bool
	// Steps run left-to-right as written. Separator[i] tells how step i is
	// attached to step i-1 (or to the root): '/' (parent) or '//'
	// (ancestor). Separator[0] is only meaningful when Root is set.
	Steps []*Step
	// Ancestor[i] is true when step i is attached with '//'.
	Ancestor []bool
}

// String returns the pattern source text.
func (p *Pattern) String() string { return p.src }

// ParsePattern parses an XSLT 1.0 match pattern.
func ParsePattern(src string) (*Pattern, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pp := &exprParser{src: src, toks: toks}
	pat := &Pattern{src: src}
	for {
		alt, err := parsePathPattern(pp)
		if err != nil {
			return nil, err
		}
		pat.Alternatives = append(pat.Alternatives, alt)
		if pp.peek().kind != tokPipe {
			break
		}
		pp.next()
	}
	if pp.peek().kind != tokEOF {
		return nil, pp.errf("unexpected %s in pattern", pp.peek())
	}
	return pat, nil
}

func parsePathPattern(p *exprParser) (*PathPattern, error) {
	pat := &PathPattern{}
	switch p.peek().kind {
	case tokSlash:
		p.next()
		pat.Root = true
		if !p.startsStep() {
			return pat, nil // pattern "/" matches the root node
		}
		pat.Ancestor = append(pat.Ancestor, false)
	case tokSlashSlash:
		p.next()
		pat.Root = true
		pat.Ancestor = append(pat.Ancestor, true)
	default:
		pat.Ancestor = append(pat.Ancestor, false)
	}
	for {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		switch step.Axis {
		case AxisChild, AxisAttribute:
			// The only axes allowed in patterns.
		default:
			return nil, p.errf("axis %s is not allowed in a pattern", step.Axis)
		}
		pat.Steps = append(pat.Steps, step)
		switch p.peek().kind {
		case tokSlash:
			p.next()
			pat.Ancestor = append(pat.Ancestor, false)
		case tokSlashSlash:
			p.next()
			pat.Ancestor = append(pat.Ancestor, true)
		default:
			return pat, nil
		}
	}
}

// Matches reports whether node matches the pattern. vars supplies variable
// bindings for predicates (may be nil).
func (p *Pattern) Matches(node *xmltree.Node, vars Variables) (bool, error) {
	for _, alt := range p.Alternatives {
		ok, err := alt.matches(node, vars)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (pp *PathPattern) matches(node *xmltree.Node, vars Variables) (bool, error) {
	if len(pp.Steps) == 0 {
		// Pattern "/" — the root node only.
		return pp.Root && node.Kind == xmltree.DocumentNode, nil
	}
	return pp.matchFrom(node, len(pp.Steps)-1, vars)
}

// matchFrom checks node against step i, then walks towards the root.
func (pp *PathPattern) matchFrom(node *xmltree.Node, i int, vars Variables) (bool, error) {
	step := pp.Steps[i]
	ok, err := stepMatches(node, step, vars)
	if err != nil || !ok {
		return false, err
	}
	if i == 0 {
		if !pp.Root {
			return true, nil
		}
		// Anchored pattern: the step's parent chain must reach the root.
		parent := patternParent(node)
		if pp.Ancestor[0] {
			return parent != nil, nil // "//a": any ancestor chain up to root
		}
		return parent != nil && parent.Kind == xmltree.DocumentNode, nil
	}
	parent := patternParent(node)
	if pp.Ancestor[i] {
		for a := parent; a != nil; a = a.Parent {
			ok, err := pp.matchFrom(a, i-1, vars)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	if parent == nil {
		return false, nil
	}
	return pp.matchFrom(parent, i-1, vars)
}

func patternParent(n *xmltree.Node) *xmltree.Node { return n.Parent }

// stepMatches checks the node test and predicates of one pattern step
// against a candidate node.
func stepMatches(node *xmltree.Node, step *Step, vars Variables) (bool, error) {
	if !matchTest(node, step.Test, step.Axis) {
		return false, nil
	}
	if len(step.Preds) == 0 {
		return true, nil
	}
	// Predicate context per XSLT 1.0 §5.2: position is the node's position
	// among its parent's children that match the node test, size is their
	// count.
	pos, size := 1, 1
	if p := node.Parent; p != nil && node.Kind != xmltree.AttributeNode {
		pos, size = 0, 0
		for _, c := range p.Children {
			if matchTest(c, step.Test, step.Axis) {
				size++
				if c == node {
					pos = size
				}
			}
		}
	}
	for _, pred := range step.Preds {
		ctx := &Context{Node: node, Position: pos, Size: size, Vars: vars}
		v, err := Eval(pred, ctx)
		if err != nil {
			return false, err
		}
		var keep bool
		if num, ok := v.(float64); ok {
			keep = float64(pos) == num
		} else {
			keep = ToBool(v)
		}
		if !keep {
			return false, nil
		}
	}
	return true, nil
}

// DefaultPriority computes the XSLT 1.0 default priority of the pattern.
// For union patterns XSLT treats each alternative as its own rule, so the
// question is only well-posed for a single alternative; asking it of a
// union returns an error (the XSLT engine expands unions before asking).
func (p *Pattern) DefaultPriority() (float64, error) {
	if len(p.Alternatives) != 1 {
		return 0, fmt.Errorf("xpath: DefaultPriority on a union pattern of %d alternatives", len(p.Alternatives))
	}
	return p.Alternatives[0].DefaultPriority(), nil
}

// DefaultPriority implements the XSLT 1.0 §5.5 rules for one alternative.
func (pp *PathPattern) DefaultPriority() float64 {
	if len(pp.Steps) != 1 || pp.Root {
		return 0.5
	}
	s := pp.Steps[0]
	if len(s.Preds) > 0 {
		return 0.5
	}
	switch s.Test.Kind {
	case TestName:
		return 0
	case TestPI:
		if s.Test.Name != "" {
			return 0
		}
		return -0.5
	case TestNSName:
		return -0.25
	default: // *, node(), text(), comment()
		return -0.5
	}
}

// SplitUnion returns one Pattern per alternative, each preserving the
// original source text of its sub-pattern.
func (p *Pattern) SplitUnion() []*Pattern {
	if len(p.Alternatives) == 1 {
		return []*Pattern{p}
	}
	parts := strings.Split(p.src, "|")
	out := make([]*Pattern, len(p.Alternatives))
	for i, alt := range p.Alternatives {
		src := p.src
		if i < len(parts) {
			src = strings.TrimSpace(parts[i])
		}
		out[i] = &Pattern{Alternatives: []*PathPattern{alt}, src: src}
	}
	return out
}

// LastStep returns the final step of the (single-alternative) pattern, the
// one that constrains the matched node itself. Returns nil for the root
// pattern "/".
func (p *Pattern) LastStep() *Step {
	if len(p.Alternatives) != 1 {
		return nil
	}
	alt := p.Alternatives[0]
	if len(alt.Steps) == 0 {
		return nil
	}
	return alt.Steps[len(alt.Steps)-1]
}

// IsRootOnly reports whether the pattern is exactly "/".
func (p *Pattern) IsRootOnly() bool {
	return len(p.Alternatives) == 1 && p.Alternatives[0].Root && len(p.Alternatives[0].Steps) == 0
}

// Describe returns a debug rendering of the parsed pattern structure.
func (p *Pattern) Describe() string {
	var sb strings.Builder
	for i, alt := range p.Alternatives {
		if i > 0 {
			sb.WriteString(" | ")
		}
		if alt.Root {
			sb.WriteString("/")
		}
		for j, s := range alt.Steps {
			if j > 0 || (alt.Root && alt.Ancestor[j]) {
				if alt.Ancestor[j] {
					sb.WriteString("//")
				} else {
					sb.WriteString("/")
				}
			}
			sb.WriteString(s.String())
		}
	}
	return sb.String()
}
