package xpath

import (
	"fmt"
	"strings"
)

// Axis identifies an XPath axis.
type Axis uint8

// Supported axes (all of XPath 1.0 except the namespace axis).
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisSelf
	AxisAttribute
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"parent":             AxisParent,
	"ancestor":           AxisAncestor,
	"ancestor-or-self":   AxisAncestorOrSelf,
	"self":               AxisSelf,
	"attribute":          AxisAttribute,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
	"following":          AxisFollowing,
	"preceding":          AxisPreceding,
}

// String returns the axis name as written in XPath.
func (a Axis) String() string {
	for name, ax := range axisNames {
		if ax == a {
			return name
		}
	}
	return "unknown-axis"
}

// IsReverse reports whether positions along this axis count backwards in
// document order (ancestor, preceding and their variants).
func (a Axis) IsReverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPrecedingSibling, AxisPreceding:
		return true
	}
	return false
}

// TestKind classifies a node test within a step.
type TestKind uint8

// Node test kinds.
const (
	TestName    TestKind = iota // foo or pfx:foo
	TestAnyName                 // *
	TestNSName                  // pfx:*
	TestText                    // text()
	TestComment                 // comment()
	TestPI                      // processing-instruction() / processing-instruction('t')
	TestNode                    // node()
)

// NodeTest is the node test of a step.
type NodeTest struct {
	Kind   TestKind
	Prefix string // for TestName / TestNSName
	Name   string // local name for TestName; PI target for TestPI
}

// String renders the node test as XPath source.
func (nt NodeTest) String() string {
	switch nt.Kind {
	case TestName:
		if nt.Prefix != "" {
			return nt.Prefix + ":" + nt.Name
		}
		return nt.Name
	case TestAnyName:
		return "*"
	case TestNSName:
		return nt.Prefix + ":*"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		if nt.Name != "" {
			return fmt.Sprintf("processing-instruction(%q)", nt.Name)
		}
		return "processing-instruction()"
	case TestNode:
		return "node()"
	}
	return "?"
}

// Step is one location step: axis, node test and predicates.
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

// String renders the step, abbreviating child:: and attribute:: axes.
func (s *Step) String() string {
	var sb strings.Builder
	switch s.Axis {
	case AxisChild:
		// abbreviated
	case AxisAttribute:
		sb.WriteByte('@')
	case AxisSelf:
		if s.Test.Kind == TestNode && len(s.Preds) == 0 {
			return "."
		}
		sb.WriteString("self::")
	case AxisParent:
		if s.Test.Kind == TestNode && len(s.Preds) == 0 {
			return ".."
		}
		sb.WriteString("parent::")
	default:
		sb.WriteString(s.Axis.String())
		sb.WriteString("::")
	}
	sb.WriteString(s.Test.String())
	for _, p := range s.Preds {
		sb.WriteByte('[')
		sb.WriteString(p.String())
		sb.WriteByte(']')
	}
	return sb.String()
}

// Expr is a parsed XPath expression.
type Expr interface {
	// String renders the expression as XPath source text; the result
	// re-parses to an equivalent expression.
	String() string
}

// NumberExpr is a numeric literal.
type NumberExpr float64

func (e NumberExpr) String() string {
	s := fmt.Sprintf("%g", float64(e))
	return s
}

// StringExpr is a string literal.
type StringExpr string

func (e StringExpr) String() string {
	if strings.ContainsRune(string(e), '"') {
		return "'" + string(e) + "'"
	}
	return `"` + string(e) + `"`
}

// VarExpr references a variable: $name.
type VarExpr string

func (e VarExpr) String() string { return "$" + string(e) }

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpUnion
)

var opNames = [...]string{"or", "and", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "div", "mod", "|"}

// String returns the operator as written in XPath.
func (op BinaryOp) String() string { return opNames[op] }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

func (e *BinaryExpr) String() string {
	return fmt.Sprintf("%s %s %s", parenthesize(e.L, e.Op, false), e.Op, parenthesize(e.R, e.Op, true))
}

// parenthesize wraps sub-expressions whose operator binds more loosely than
// the parent operator, so String() output re-parses with the same shape.
// Operators are left-associative, so a right operand of EQUAL precedence
// also needs parentheses ("a != (b != c)" must not print as "a != b != c").
func parenthesize(e Expr, parent BinaryOp, rightOperand bool) string {
	b, ok := e.(*BinaryExpr)
	if !ok {
		return e.String()
	}
	childPrec, parentPrec := opPrecedence(b.Op), opPrecedence(parent)
	if childPrec < parentPrec || (rightOperand && childPrec == parentPrec) {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func opPrecedence(op BinaryOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNeq:
		return 3
	case OpLt, OpLe, OpGt, OpGe:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv, OpMod:
		return 6
	case OpUnion:
		return 7
	}
	return 0
}

// NegExpr is unary minus.
type NegExpr struct{ X Expr }

func (e *NegExpr) String() string {
	// Binary operands bind more loosely than unary minus; parenthesize so
	// the printed form re-parses with the same shape.
	if _, ok := e.X.(*BinaryExpr); ok {
		return "-(" + e.X.String() + ")"
	}
	return "-" + e.X.String()
}

// FuncExpr is a function call.
type FuncExpr struct {
	Name string // as written, e.g. "count" or "fn:string"
	Args []Expr
}

func (e *FuncExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// PathExpr is a location path, optionally rooted at a primary expression
// (FilterExpr '/' RelativeLocationPath in the XPath grammar).
type PathExpr struct {
	// Abs marks an absolute path (leading '/'). Ignored when Start is set.
	Abs bool
	// Start, when non-nil, is the primary expression the path is applied
	// to, e.g. the function call in "id('x')/child". Its predicates (the
	// FilterExpr part) are in StartPreds.
	Start      Expr
	StartPreds []Expr
	Steps      []*Step
}

func (e *PathExpr) String() string {
	var sb strings.Builder
	switch {
	case e.Start != nil:
		switch e.Start.(type) {
		case *FuncExpr, VarExpr, StringExpr, NumberExpr:
			sb.WriteString(e.Start.String())
		default:
			sb.WriteByte('(')
			sb.WriteString(e.Start.String())
			sb.WriteByte(')')
		}
		for _, p := range e.StartPreds {
			sb.WriteByte('[')
			sb.WriteString(p.String())
			sb.WriteByte(']')
		}
		if len(e.Steps) > 0 {
			sb.WriteByte('/')
		}
	case e.Abs:
		sb.WriteByte('/')
	}
	// Bare descendant-or-self::node() steps abbreviate to '//' when another
	// step follows; steps with predicates print in full.
	// hasLead reports that a '/' separator context already exists (an
	// absolute path or a filter base), so a leading bare dos step may
	// abbreviate; in a plain relative path it must print in full or the
	// output would read as an absolute '//' path.
	hasLead := e.Abs || e.Start != nil
	sepNeeded := false // '/' required before the next plain step
	for i, s := range e.Steps {
		bareDos := s.Axis == AxisDescendantOrSelf && s.Test.Kind == TestNode && len(s.Preds) == 0
		if bareDos && i+1 < len(e.Steps) && (sepNeeded || (hasLead && i == 0)) {
			if sepNeeded {
				sb.WriteString("//")
			} else {
				sb.WriteString("/")
			}
			sepNeeded = false
			continue
		}
		if sepNeeded {
			sb.WriteByte('/')
		}
		sb.WriteString(s.String())
		sepNeeded = true
	}
	return sb.String()
}

// IsContextItem reports whether the expression is exactly "." — a single
// self::node() step with no predicates.
func (e *PathExpr) IsContextItem() bool {
	return e.Start == nil && !e.Abs && len(e.Steps) == 1 &&
		e.Steps[0].Axis == AxisSelf && e.Steps[0].Test.Kind == TestNode && len(e.Steps[0].Preds) == 0
}
