package xpath

import "testing"

func parsePred(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e
}

func TestConjunctsSimple(t *testing.T) {
	cases := []struct {
		src  string
		want []string // Comparison.String() per conjunct
	}{
		{"price > 100", []string{"price > 100"}},
		{"@id = $id", []string{"@id = $id"}},
		{"@id = 'd1'", []string{`@id = "d1"`}},
		{"100 < price", []string{"price > 100"}},
		{"$lo <= sal", []string{"sal >= $lo"}},
		{"deptno = 10 and sal > 2000", []string{"deptno = 10", "sal > 2000"}},
		{"a = 1 and b = 2 and c != 3", []string{"a = 1", "b = 2", "c != 3"}},
		{"sal >= -5", []string{"sal >= -5"}},
	}
	for _, tc := range cases {
		got, ok := Conjuncts(parsePred(t, tc.src))
		if !ok {
			t.Errorf("Conjuncts(%q): not lowerable, want %v", tc.src, tc.want)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("Conjuncts(%q) = %v, want %v", tc.src, got, tc.want)
			continue
		}
		for i, c := range got {
			if c.String() != tc.want[i] {
				t.Errorf("Conjuncts(%q)[%d] = %q, want %q", tc.src, i, c.String(), tc.want[i])
			}
		}
	}
}

func TestConjunctsFlipped(t *testing.T) {
	got, ok := Conjuncts(parsePred(t, "2000 < sal"))
	if !ok || len(got) != 1 {
		t.Fatalf("Conjuncts: ok=%v got=%v", ok, got)
	}
	if !got[0].Flipped || got[0].Op != OpGt || got[0].Name != "sal" {
		t.Fatalf("flip: %+v", got[0])
	}
}

func TestConjunctsRejects(t *testing.T) {
	reject := []string{
		"price",                   // bare path, no comparison
		"price > 100 or sal = 1",  // disjunction
		"not(price > 100)",        // function
		"position() = 1",          // positional
		"a/b = 1",                 // multi-step operand
		"../x = 1",                // non-child axis
		"a[1] = 1",                // operand with predicate
		"price > sal",             // column vs column
		"1 = 2",                   // constant vs constant
		"price + 1 > 100",         // arithmetic operand
		"@id = concat('a', 'b')",  // computed value
		"p:price > 100",           // prefixed name
		"price > 100 and (a or b)", // conjunct not a comparison
	}
	for _, src := range reject {
		if got, ok := Conjuncts(parsePred(t, src)); ok {
			t.Errorf("Conjuncts(%q) = %v, want reject", src, got)
		}
	}
}
