package xpath

import (
	"fmt"
	"math"

	"repro/internal/xmltree"
)

// Variables resolves variable references during evaluation.
type Variables interface {
	// LookupVar returns the value bound to name, and whether it is bound.
	LookupVar(name string) (Value, bool)
}

// VarMap is a map-backed Variables implementation.
type VarMap map[string]Value

// LookupVar implements Variables.
func (m VarMap) LookupVar(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Context carries the dynamic evaluation context: the context node, the
// context position and size, and variable bindings.
type Context struct {
	Node     *xmltree.Node
	Position int // 1-based
	Size     int
	Vars     Variables

	// Current is the XSLT current() node; when nil, current() returns the
	// context node.
	Current *xmltree.Node

	// Funcs optionally resolves extension functions (e.g. XSLT's
	// document() or key()); consulted after the core library.
	Funcs func(name string) (Function, bool)
}

// Function is an evaluable extension function.
type Function func(ctx *Context, args []Value) (Value, error)

// NewContext returns a context positioned on node with position=size=1 and
// no variables.
func NewContext(node *xmltree.Node) *Context {
	return &Context{Node: node, Position: 1, Size: 1}
}

// clone returns a shallow copy the evaluator can reposition.
func (c *Context) clone() *Context {
	cp := *c
	return &cp
}

// Eval evaluates the expression in the given context.
func Eval(e Expr, ctx *Context) (Value, error) {
	switch x := e.(type) {
	case NumberExpr:
		return float64(x), nil
	case StringExpr:
		return string(x), nil
	case VarExpr:
		if ctx.Vars != nil {
			if v, ok := ctx.Vars.LookupVar(string(x)); ok {
				return v, nil
			}
		}
		return nil, fmt.Errorf("xpath: undefined variable $%s", string(x))
	case *NegExpr:
		v, err := Eval(x.X, ctx)
		if err != nil {
			return nil, err
		}
		return -ToNumber(v), nil
	case *BinaryExpr:
		return evalBinary(x, ctx)
	case *FuncExpr:
		return evalFunc(x, ctx)
	case *PathExpr:
		return evalPath(x, ctx)
	}
	return nil, fmt.Errorf("xpath: unknown expression type %T", e)
}

// EvalNodeSet evaluates the expression and requires a node-set result.
func EvalNodeSet(e Expr, ctx *Context) (NodeSet, error) {
	v, err := Eval(e, ctx)
	if err != nil {
		return nil, err
	}
	return ToNodeSet(v)
}

func evalBinary(e *BinaryExpr, ctx *Context) (Value, error) {
	switch e.Op {
	case OpOr, OpAnd:
		l, err := Eval(e.L, ctx)
		if err != nil {
			return nil, err
		}
		lb := ToBool(l)
		if e.Op == OpOr && lb {
			return true, nil
		}
		if e.Op == OpAnd && !lb {
			return false, nil
		}
		r, err := Eval(e.R, ctx)
		if err != nil {
			return nil, err
		}
		return ToBool(r), nil
	case OpUnion:
		l, err := EvalNodeSet(e.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := EvalNodeSet(e.R, ctx)
		if err != nil {
			return nil, err
		}
		merged := append(append(NodeSet{}, l...), r...)
		return NodeSet(xmltree.SortDocOrder(merged)), nil
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
		l, err := Eval(e.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := Eval(e.R, ctx)
		if err != nil {
			return nil, err
		}
		return compareValues(e.Op, l, r), nil
	default: // arithmetic
		l, err := Eval(e.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := Eval(e.R, ctx)
		if err != nil {
			return nil, err
		}
		a, b := ToNumber(l), ToNumber(r)
		switch e.Op {
		case OpAdd:
			return a + b, nil
		case OpSub:
			return a - b, nil
		case OpMul:
			return a * b, nil
		case OpDiv:
			return a / b, nil
		case OpMod:
			return math.Mod(a, b), nil
		}
	}
	return nil, fmt.Errorf("xpath: unhandled operator %v", e.Op)
}

func evalPath(e *PathExpr, ctx *Context) (Value, error) {
	var current NodeSet
	switch {
	case e.Start != nil:
		v, err := Eval(e.Start, ctx)
		if err != nil {
			return nil, err
		}
		if len(e.StartPreds) == 0 && len(e.Steps) == 0 {
			return v, nil
		}
		ns, err := ToNodeSet(v)
		if err != nil {
			return nil, err
		}
		ns, err = applyPredicates(ns, e.StartPreds, ctx)
		if err != nil {
			return nil, err
		}
		if len(e.Steps) == 0 {
			return ns, nil
		}
		current = ns
	case e.Abs:
		current = NodeSet{ctx.Node.Root()}
		if len(e.Steps) == 0 {
			return current, nil
		}
	default:
		current = NodeSet{ctx.Node}
	}

	for _, step := range e.Steps {
		next, err := evalStep(step, current, ctx)
		if err != nil {
			return nil, err
		}
		current = next
		if len(current) == 0 {
			break
		}
	}
	return current, nil
}

// evalStep applies one location step to each node of input, unioning the
// results in document order.
func evalStep(step *Step, input NodeSet, outer *Context) (NodeSet, error) {
	var out NodeSet
	seen := map[*xmltree.Node]bool{}
	for _, n := range input {
		cands := AxisNodes(step.Axis, n, step.Test)
		// axisNodes yields candidates in axis order (reverse axes come out
		// in reverse document order), so proximity position is the index.
		filtered, err := applyPredicates(cands, step.Preds, outer)
		if err != nil {
			return nil, err
		}
		for _, f := range filtered {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	if len(input) > 1 || stepNeedsSort(step.Axis) {
		out = NodeSet(xmltree.SortDocOrder(out))
	}
	return out, nil
}

func stepNeedsSort(a Axis) bool {
	// Reverse axes produce candidates in reverse document order; the
	// result node-set must still be in document order.
	return a.IsReverse()
}

// applyPredicates filters candidates through each predicate in turn,
// recomputing position/size per predicate per XPath semantics. Candidates
// must be supplied in axis order; positions are 1-based indexes into it.
func applyPredicates(cands NodeSet, preds []Expr, outer *Context) (NodeSet, error) {
	for _, pred := range preds {
		if len(cands) == 0 {
			return cands, nil
		}
		var kept NodeSet
		size := len(cands)
		for i, cand := range cands {
			pos := i + 1
			ctx := outer.clone()
			ctx.Node = cand
			ctx.Position = pos
			ctx.Size = size
			v, err := Eval(pred, ctx)
			if err != nil {
				return nil, err
			}
			keep := false
			if num, ok := v.(float64); ok {
				keep = float64(pos) == num
			} else {
				keep = ToBool(v)
			}
			if keep {
				kept = append(kept, cand)
			}
		}
		cands = kept
	}
	return cands, nil
}

// AxisNodes returns the nodes reachable from n along the axis that satisfy
// the node test, in axis order (reverse axes yield reverse document order,
// so positional predicates count proximity). Exported for the XQuery
// engine, which applies its own predicates.
func AxisNodes(axis Axis, n *xmltree.Node, test NodeTest) NodeSet {
	var out NodeSet
	add := func(c *xmltree.Node) {
		if matchTest(c, test, axis) {
			out = append(out, c)
		}
	}
	switch axis {
	case AxisChild:
		for _, c := range n.Children {
			add(c)
		}
	case AxisDescendant:
		walkDescendants(n, add)
	case AxisDescendantOrSelf:
		add(n)
		walkDescendants(n, add)
	case AxisParent:
		if p := parentOf(n); p != nil {
			add(p)
		}
	case AxisAncestor:
		for p := parentOf(n); p != nil; p = parentOf(p) {
			add(p)
		}
	case AxisAncestorOrSelf:
		add(n)
		for p := parentOf(n); p != nil; p = parentOf(p) {
			add(p)
		}
	case AxisSelf:
		add(n)
	case AxisAttribute:
		for _, a := range n.Attrs {
			if a.Prefix == "xmlns" || (a.Prefix == "" && a.Name == "xmlns") {
				continue // namespace declarations are not on the attribute axis
			}
			add(a)
		}
	case AxisFollowingSibling:
		if p := n.Parent; p != nil && n.Kind != xmltree.AttributeNode {
			idx := childIndex(p, n)
			for _, c := range p.Children[idx+1:] {
				add(c)
			}
		}
	case AxisPrecedingSibling:
		if p := n.Parent; p != nil && n.Kind != xmltree.AttributeNode {
			idx := childIndex(p, n)
			for i := idx - 1; i >= 0; i-- {
				add(p.Children[i])
			}
		}
	case AxisFollowing:
		for cur := n; cur != nil; cur = parentOf(cur) {
			p := cur.Parent
			if p == nil {
				break
			}
			idx := childIndex(p, cur)
			for _, sib := range p.Children[idx+1:] {
				add(sib)
				walkDescendants(sib, add)
			}
		}
	case AxisPreceding:
		// Reverse document order, excluding ancestors.
		var collect func(root *xmltree.Node)
		stop := map[*xmltree.Node]bool{}
		for p := n; p != nil; p = parentOf(p) {
			stop[p] = true
		}
		collect = func(root *xmltree.Node) {
			for i := len(root.Children) - 1; i >= 0; i-- {
				c := root.Children[i]
				if stop[c] {
					// Ancestors are excluded from the axis but their
					// earlier children still precede n.
					collect(c)
					continue
				}
				if xmltree.CompareOrder(c, n) < 0 {
					collect(c)
					add(c)
				}
			}
		}
		collect(n.Root())
	}
	return out
}

func parentOf(n *xmltree.Node) *xmltree.Node { return n.Parent }

func childIndex(p, n *xmltree.Node) int {
	for i, c := range p.Children {
		if c == n {
			return i
		}
	}
	return -1
}

func walkDescendants(n *xmltree.Node, f func(*xmltree.Node)) {
	for _, c := range n.Children {
		f(c)
		walkDescendants(c, f)
	}
}

// matchTest reports whether node satisfies the node test. The principal
// node type of the attribute axis is attribute; of every other axis it is
// element (XPath 1.0 §2.3).
func matchTest(n *xmltree.Node, t NodeTest, axis Axis) bool {
	principal := xmltree.ElementNode
	if axis == AxisAttribute {
		principal = xmltree.AttributeNode
	}
	switch t.Kind {
	case TestNode:
		return true
	case TestText:
		return n.Kind == xmltree.TextNode
	case TestComment:
		return n.Kind == xmltree.CommentNode
	case TestPI:
		return n.Kind == xmltree.ProcInstNode && (t.Name == "" || n.Name == t.Name)
	case TestAnyName:
		return n.Kind == principal
	case TestNSName:
		return n.Kind == principal && n.Prefix == t.Prefix
	case TestName:
		if n.Kind != principal {
			return false
		}
		// Name matching is by qualified name as written; the engines in
		// this repository resolve prefixes lexically (source prefix
		// equality), which is sufficient for the single-prefix documents
		// the benchmark and paper examples use.
		return n.Name == t.Name && n.Prefix == t.Prefix
	}
	return false
}
