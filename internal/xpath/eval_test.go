package xpath

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// deptDoc is the paper's Example 1 first row (Table 4).
const deptDoc = `<dept>
<dname>ACCOUNTING</dname>
<loc>NEW YORK</loc>
<employees>
<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>
<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>
</employees>
</dept>`

func parseDoc(t *testing.T, src string) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func evalOn(t *testing.T, doc *xmltree.Node, expr string) Value {
	t.Helper()
	e, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	v, err := Eval(e, NewContext(doc))
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	return v
}

func evalString(t *testing.T, doc *xmltree.Node, expr string) string {
	t.Helper()
	return ToString(evalOn(t, doc, expr))
}

func evalNumber(t *testing.T, doc *xmltree.Node, expr string) float64 {
	t.Helper()
	return ToNumber(evalOn(t, doc, expr))
}

func evalCount(t *testing.T, doc *xmltree.Node, expr string) int {
	t.Helper()
	ns, err := ToNodeSet(evalOn(t, doc, expr))
	if err != nil {
		t.Fatalf("%q did not return a node-set: %v", expr, err)
	}
	return len(ns)
}

func TestChildSteps(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalString(t, doc, "/dept/dname"); got != "ACCOUNTING" {
		t.Fatalf("dname = %q", got)
	}
	if got := evalCount(t, doc, "/dept/employees/emp"); got != 2 {
		t.Fatalf("emp count = %d", got)
	}
	if got := evalCount(t, doc, "/dept/nonexistent"); got != 0 {
		t.Fatalf("nonexistent = %d", got)
	}
}

func TestPaperPredicate(t *testing.T) {
	// The paper's heavily-computed predicate: emp[sal > 2000].
	doc := parseDoc(t, deptDoc)
	if got := evalCount(t, doc, "/dept/employees/emp[sal > 2000]"); got != 1 {
		t.Fatalf("emp[sal>2000] = %d, want 1", got)
	}
	if got := evalString(t, doc, "/dept/employees/emp[sal > 2000]/ename"); got != "CLARK" {
		t.Fatalf("highly paid = %q", got)
	}
}

func TestPositionalPredicates(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalString(t, doc, "//emp[1]/ename"); got != "CLARK" {
		t.Fatalf("emp[1] = %q", got)
	}
	if got := evalString(t, doc, "//emp[2]/ename"); got != "MILLER" {
		t.Fatalf("emp[2] = %q", got)
	}
	if got := evalString(t, doc, "//emp[last()]/ename"); got != "MILLER" {
		t.Fatalf("emp[last()] = %q", got)
	}
	if got := evalString(t, doc, "//emp[position() = 2]/empno"); got != "7934" {
		t.Fatalf("position()=2 → %q", got)
	}
}

func TestDescendantAxis(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalCount(t, doc, "//emp"); got != 2 {
		t.Fatalf("//emp = %d", got)
	}
	if got := evalCount(t, doc, "/descendant::emp"); got != 2 {
		t.Fatalf("/descendant::emp = %d", got)
	}
	if got := evalCount(t, doc, "//text()"); got == 0 {
		t.Fatal("//text() empty")
	}
}

func TestParentAndAncestorAxes(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalString(t, doc, "//sal/../ename"); got != "CLARK" {
		t.Fatalf("sal/../ename = %q", got)
	}
	if got := evalCount(t, doc, "//sal/parent::emp"); got != 2 {
		t.Fatalf("parent::emp = %d", got)
	}
	if got := evalCount(t, doc, "//sal/parent::dept"); got != 0 {
		t.Fatalf("parent::dept = %d", got)
	}
	if got := evalCount(t, doc, "//empno/ancestor::*"); got != 4 {
		// emp(x2), employees, dept — union over both empnos
		t.Fatalf("ancestor::* = %d", got)
	}
	if got := evalCount(t, doc, "(//empno)[1]/ancestor-or-self::node()"); got != 5 {
		// empno, emp, employees, dept, document
		t.Fatalf("ancestor-or-self = %d", got)
	}
}

func TestSiblingAxes(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalString(t, doc, "/dept/dname/following-sibling::loc"); got != "NEW YORK" {
		t.Fatalf("following-sibling = %q", got)
	}
	if got := evalString(t, doc, "/dept/loc/preceding-sibling::dname"); got != "ACCOUNTING" {
		t.Fatalf("preceding-sibling = %q", got)
	}
	if got := evalCount(t, doc, "/dept/employees/following-sibling::*"); got != 0 {
		t.Fatalf("employees has following siblings: %d", got)
	}
}

func TestFollowingPrecedingAxes(t *testing.T) {
	doc := parseDoc(t, `<r><a><a1/></a><b/><c><c1/></c></r>`)
	if got := evalCount(t, doc, "//a1/following::*"); got != 3 { // b, c, c1
		t.Fatalf("following = %d", got)
	}
	if got := evalCount(t, doc, "//c1/preceding::*"); got != 3 { // a, a1, b
		t.Fatalf("preceding = %d", got)
	}
	// Preceding excludes ancestors.
	if got := evalCount(t, doc, "//c1/preceding::c"); got != 0 {
		t.Fatalf("preceding should exclude ancestors, got %d", got)
	}
	// Result must be in document order.
	ns, _ := ToNodeSet(evalOn(t, doc, "//c1/preceding::*"))
	if ns[0].Name != "a" || ns[2].Name != "b" {
		t.Fatalf("preceding order wrong: %s %s %s", ns[0].Name, ns[1].Name, ns[2].Name)
	}
}

func TestReverseAxisPositions(t *testing.T) {
	doc := parseDoc(t, `<r><a/><b/><c/><d/></r>`)
	// From d, preceding-sibling::*[1] is c (nearest first on reverse axes).
	ns, _ := ToNodeSet(evalOn(t, doc, "//d/preceding-sibling::*[1]"))
	if len(ns) != 1 || ns[0].Name != "c" {
		t.Fatalf("preceding-sibling::*[1] = %v", ns)
	}
	ns, _ = ToNodeSet(evalOn(t, doc, "//d/preceding-sibling::*[last()]"))
	if len(ns) != 1 || ns[0].Name != "a" {
		t.Fatalf("preceding-sibling::*[last()] wrong")
	}
}

func TestAttributeAxis(t *testing.T) {
	doc := parseDoc(t, `<table border="2" xmlns:x="urn:y"><tr x:k="v"/></table>`)
	if got := evalString(t, doc, "/table/@border"); got != "2" {
		t.Fatalf("@border = %q", got)
	}
	// Namespace declarations are not attributes.
	if got := evalCount(t, doc, "/table/@*"); got != 1 {
		t.Fatalf("@* = %d, want 1", got)
	}
	if got := evalCount(t, doc, "//tr/@x:k"); got != 1 {
		t.Fatalf("@x:k = %d", got)
	}
	if got := evalCount(t, doc, "//tr/attribute::x:*"); got != 1 {
		t.Fatalf("attribute::x:* = %d", got)
	}
}

func TestUnion(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalCount(t, doc, "/dept/dname | /dept/loc"); got != 2 {
		t.Fatalf("union = %d", got)
	}
	// Union result in document order regardless of operand order.
	ns, _ := ToNodeSet(evalOn(t, doc, "/dept/loc | /dept/dname"))
	if ns[0].Name != "dname" {
		t.Fatal("union not in document order")
	}
	// Duplicates removed.
	if got := evalCount(t, doc, "//emp | //emp"); got != 2 {
		t.Fatalf("dup union = %d", got)
	}
}

func TestArithmetic(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	cases := []struct {
		expr string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 div 4", 2.5},
		{"10 mod 4", 2},
		{"-3 + 1", -2},
		{"2 > 1 and 3 > 2", 1}, // true → 1
		{"sum(//sal)", 3750},
		{"count(//emp) * 2", 4},
		{"floor(2.7)", 2},
		{"ceiling(2.1)", 3},
		{"round(2.5)", 3},
		{"round(-2.5)", -2}, // round half toward +inf
	}
	for _, tc := range cases {
		if got := evalNumber(t, doc, tc.expr); got != tc.want {
			t.Errorf("%s = %g, want %g", tc.expr, got, tc.want)
		}
	}
	if !math.IsNaN(evalNumber(t, doc, `number("abc")`)) {
		t.Error("number('abc') should be NaN")
	}
}

func TestComparisonSemantics(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	cases := []struct {
		expr string
		want bool
	}{
		{"//sal > 2000", true}, // existential: some sal > 2000
		{"//sal < 2000", true}, // some sal < 2000 too
		{"//sal > 5000", false},
		{"//ename = 'CLARK'", true},
		{"//ename != 'CLARK'", true}, // existential !=
		{"not(//ename = 'NOPE')", true},
		{"'a' = 'a'", true},
		{"1 = true()", true}, // bool comparison coerces
		{"'' = false()", true},
		{"2 = '2'", true}, // number/string coerces to number
	}
	for _, tc := range cases {
		if got := ToBool(evalOn(t, doc, tc.expr)); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	cases := []struct {
		expr, want string
	}{
		{`concat("Department name: ", string(/dept/dname))`, "Department name: ACCOUNTING"},
		{`substring("12345", 2, 3)`, "234"},
		{`substring("12345", 0)`, "12345"},
		{`substring("12345", 1.5, 2.6)`, "234"}, // spec rounding example
		{`substring-before("1999/04/01", "/")`, "1999"},
		{`substring-after("1999/04/01", "/")`, "04/01"},
		{`normalize-space("  a   b  ")`, "a b"},
		{`translate("bar", "abc", "ABC")`, "BAr"},
		{`translate("--aaa--", "abc-", "ABC")`, "AAA"},
		{`string(123)`, "123"},
		{`string(1.5)`, "1.5"},
		{`string(//emp[2]/ename)`, "MILLER"},
		{`local-name(//emp[1])`, "emp"},
		{`name(/dept)`, "dept"},
	}
	for _, tc := range cases {
		if got := evalString(t, doc, tc.expr); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
	if evalNumber(t, doc, `string-length("héllo")`) != 5 {
		t.Error("string-length must count runes")
	}
	if !ToBool(evalOn(t, doc, `starts-with("foobar","foo") and contains("foobar","oba")`)) {
		t.Error("starts-with/contains wrong")
	}
}

func TestVariables(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	e := MustParse("$threshold < //sal")
	ctx := NewContext(doc)
	ctx.Vars = VarMap{"threshold": float64(2000)}
	v, err := Eval(e, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ToBool(v) {
		t.Fatal("variable comparison failed")
	}
	// Unknown variable must error.
	if _, err := Eval(MustParse("$nope"), NewContext(doc)); err == nil {
		t.Fatal("undefined variable should error")
	}
}

func TestNodeSetFirstNodeString(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	// string() of a node-set takes the FIRST node in document order.
	if got := evalString(t, doc, "string(//ename)"); got != "CLARK" {
		t.Fatalf("string(//ename) = %q", got)
	}
}

func TestFilterExprWithPredicateAndPath(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalString(t, doc, "(//emp)[2]/ename"); got != "MILLER" {
		t.Fatalf("(//emp)[2] = %q", got)
	}
	// Note the difference from //emp[2]: both are MILLER here, but with a
	// deeper test, (//x)[1] takes the global first.
	doc2 := parseDoc(t, `<r><g><x>1</x><x>2</x></g><g><x>3</x></g></r>`)
	if got := evalCount(t, doc2, "//x[1]"); got != 2 {
		t.Fatalf("//x[1] = %d, want 2 (per-parent positions)", got)
	}
	if got := evalCount(t, doc2, "(//x)[1]"); got != 1 {
		t.Fatalf("(//x)[1] = %d, want 1", got)
	}
}

func TestContextPositionInPredicates(t *testing.T) {
	doc := parseDoc(t, `<r><i>a</i><i>b</i><i>c</i></r>`)
	ns, _ := ToNodeSet(evalOn(t, doc, "/r/i[position() > 1]"))
	if len(ns) != 2 || ns[0].StringValue() != "b" {
		t.Fatalf("position()>1 wrong: %d", len(ns))
	}
	// Chained predicates renumber: [position()>1][1] is the 2nd item.
	ns, _ = ToNodeSet(evalOn(t, doc, "/r/i[position() > 1][1]"))
	if len(ns) != 1 || ns[0].StringValue() != "b" {
		t.Fatal("chained predicate renumbering wrong")
	}
}

func TestNodeTests(t *testing.T) {
	doc := parseDoc(t, `<r>text<!--c--><?pi d?><e/></r>`)
	if got := evalCount(t, doc, "/r/node()"); got != 4 {
		t.Fatalf("node() = %d", got)
	}
	if got := evalCount(t, doc, "/r/comment()"); got != 1 {
		t.Fatalf("comment() = %d", got)
	}
	if got := evalCount(t, doc, "/r/processing-instruction()"); got != 1 {
		t.Fatalf("pi() = %d", got)
	}
	if got := evalCount(t, doc, `/r/processing-instruction("pi")`); got != 1 {
		t.Fatalf("pi('pi') = %d", got)
	}
	if got := evalCount(t, doc, `/r/processing-instruction("other")`); got != 0 {
		t.Fatalf("pi('other') = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"/dept/",
		"foo[",
		"foo]",
		"foo bar",
		"@@x",
		"1 +",
		"unknownaxis::x",
		`"unterminated`,
		"$",
		"f(,)",
		"a/b[",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	exprs := []string{
		"/dept/employees/emp[sal > 2000]",
		"//emp",
		"concat('a', 'b', string(.))",
		"$var/emp[empno = 3456]",
		"count(//emp) * 2 + 1",
		"dname | loc",
		"../@id",
		"self::node()",
		"emp/empno",
		"(//x)[1]/y",
		"a//b/c[2][@k = 'v']",
		"not(position() = last())",
	}
	doc := parseDoc(t, deptDoc)
	for _, src := range exprs {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		out := e.String()
		e2, err := Parse(out)
		if err != nil {
			t.Errorf("re-Parse(%q from %q): %v", out, src, err)
			continue
		}
		// The round-tripped expression must evaluate identically.
		ctx := NewContext(doc)
		ctx.Vars = VarMap{"var": NodeSet{doc.DocumentElement()}}
		v1, err1 := Eval(e, ctx)
		v2, err2 := Eval(e2, ctx)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("round trip of %q changed error: %v vs %v", src, err1, err2)
			continue
		}
		if err1 == nil && ToString(v1) != ToString(v2) {
			t.Errorf("round trip of %q changed value: %q vs %q (printed %q)", src, ToString(v1), ToString(v2), out)
		}
	}
}

func TestNumberToString(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {2450, "2450"}, {1.5, "1.5"}, {-7, "-7"},
		{math.NaN(), "NaN"}, {math.Inf(1), "Infinity"}, {math.Inf(-1), "-Infinity"},
		{0, "0"},
	}
	for _, tc := range cases {
		if got := NumberToString(tc.in); got != tc.want {
			t.Errorf("NumberToString(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEvalNodeSetErrors(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if _, err := EvalNodeSet(MustParse("1 + 1"), NewContext(doc)); err == nil {
		t.Fatal("scalar → node-set conversion should fail")
	}
	if _, err := Eval(MustParse("unknownfn()"), NewContext(doc)); err == nil {
		t.Fatal("unknown function should fail")
	}
	if _, err := Eval(MustParse("substring('a')"), NewContext(doc)); err == nil {
		t.Fatal("arity error should fail")
	}
}

func TestExtensionFunctions(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	ctx := NewContext(doc)
	ctx.Funcs = func(name string) (Function, bool) {
		if name == "ext:double" {
			return func(_ *Context, args []Value) (Value, error) {
				return ToNumber(args[0]) * 2, nil
			}, true
		}
		return nil, false
	}
	v, err := Eval(MustParse("ext:double(21)"), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ToNumber(v) != 42 {
		t.Fatalf("ext:double = %v", v)
	}
}

func TestFnPrefixResolvesToCore(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if got := evalString(t, doc, `fn:concat("a", "b")`); got != "ab" {
		t.Fatalf("fn:concat = %q", got)
	}
	if got := evalString(t, doc, `fn:string(/dept/loc)`); got != "NEW YORK" {
		t.Fatalf("fn:string = %q", got)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("foo[bar")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "foo[bar") {
		t.Fatalf("error should cite the source: %v", err)
	}
}
