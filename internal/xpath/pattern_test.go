package xpath

import (
	"testing"

	"repro/internal/xmltree"
)

func firstNamed(t *testing.T, doc *xmltree.Node, name string) *xmltree.Node {
	t.Helper()
	es := doc.ElementsByName(name)
	if len(es) == 0 {
		t.Fatalf("no element %q", name)
	}
	return es[0]
}

func matches(t *testing.T, pat string, node *xmltree.Node) bool {
	t.Helper()
	p, err := ParsePattern(pat)
	if err != nil {
		t.Fatalf("ParsePattern(%q): %v", pat, err)
	}
	ok, err := p.Matches(node, nil)
	if err != nil {
		t.Fatalf("Matches(%q): %v", pat, err)
	}
	return ok
}

func TestSimpleNamePattern(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	dname := firstNamed(t, doc, "dname")
	if !matches(t, "dname", dname) {
		t.Fatal("dname should match")
	}
	if matches(t, "loc", dname) {
		t.Fatal("loc should not match dname")
	}
	if !matches(t, "*", dname) {
		t.Fatal("* should match any element")
	}
}

func TestMultiStepPattern(t *testing.T) {
	// Paper Table 16: <xsl:template match="emp/empno">.
	doc := parseDoc(t, deptDoc)
	empno := firstNamed(t, doc, "empno")
	if !matches(t, "emp/empno", empno) {
		t.Fatal("emp/empno should match")
	}
	if matches(t, "dept/empno", empno) {
		t.Fatal("dept/empno should not match (parent is emp)")
	}
	if !matches(t, "employees/emp/empno", empno) {
		t.Fatal("three-step pattern should match")
	}
	dname := firstNamed(t, doc, "dname")
	if matches(t, "emp/empno", dname) {
		t.Fatal("emp/empno should not match dname")
	}
}

func TestAncestorPattern(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	empno := firstNamed(t, doc, "empno")
	if !matches(t, "dept//empno", empno) {
		t.Fatal("dept//empno should match")
	}
	if !matches(t, "//empno", empno) {
		t.Fatal("//empno should match")
	}
	if matches(t, "loc//empno", empno) {
		t.Fatal("loc//empno should not match")
	}
}

func TestRootedPattern(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	dept := doc.DocumentElement()
	if !matches(t, "/dept", dept) {
		t.Fatal("/dept should match the root element")
	}
	emp := firstNamed(t, doc, "emp")
	if matches(t, "/emp", emp) {
		t.Fatal("/emp should not match a nested emp")
	}
	if !matches(t, "/", doc) {
		t.Fatal("/ should match the document node")
	}
	if matches(t, "/", dept) {
		t.Fatal("/ should not match an element")
	}
	if !matches(t, "/dept/employees/emp", emp) {
		t.Fatal("fully rooted pattern should match")
	}
}

func TestPredicatePattern(t *testing.T) {
	// Paper Table 18: match="emp/empno[. = 3456]".
	doc := parseDoc(t, `<es><emp><empno>3456</empno></emp><emp><empno>9</empno></emp></es>`)
	empnos := doc.ElementsByName("empno")
	if !matches(t, "emp/empno[. = 3456]", empnos[0]) {
		t.Fatal("value predicate should match 3456")
	}
	if matches(t, "emp/empno[. = 3456]", empnos[1]) {
		t.Fatal("value predicate should not match 9")
	}
}

func TestPositionalPatternPredicate(t *testing.T) {
	doc := parseDoc(t, `<r><i>a</i><i>b</i><x/><i>c</i></r>`)
	items := doc.ElementsByName("i")
	// Positions count among siblings matching the node test.
	if !matches(t, "i[1]", items[0]) {
		t.Fatal("i[1] should match first i")
	}
	if matches(t, "i[1]", items[1]) {
		t.Fatal("i[1] should not match second i")
	}
	if !matches(t, "i[3]", items[2]) {
		t.Fatal("i[3] should match third i (x does not count)")
	}
	if !matches(t, "i[last()]", items[2]) {
		t.Fatal("i[last()] should match last i")
	}
}

func TestAttributePattern(t *testing.T) {
	doc := parseDoc(t, `<e id="1"><f class="x"/></e>`)
	f := firstNamed(t, doc, "f")
	attr := f.Attrs[0]
	if !matches(t, "@class", attr) {
		t.Fatal("@class should match")
	}
	if matches(t, "@id", attr) {
		t.Fatal("@id should not match class attr")
	}
	if !matches(t, "f/@class", attr) {
		t.Fatal("f/@class should match")
	}
	if matches(t, "@class", f) {
		t.Fatal("@class should not match an element")
	}
}

func TestTextAndNodePatterns(t *testing.T) {
	doc := parseDoc(t, `<r>hello<e/></r>`)
	r := doc.DocumentElement()
	text := r.Children[0]
	if !matches(t, "text()", text) {
		t.Fatal("text() should match a text node")
	}
	if matches(t, "text()", r) {
		t.Fatal("text() should not match an element")
	}
	if !matches(t, "node()", text) || !matches(t, "node()", r.Children[1]) {
		t.Fatal("node() should match text and element children")
	}
}

func TestUnionPattern(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	if !matches(t, "dname | loc", firstNamed(t, doc, "dname")) {
		t.Fatal("union should match dname")
	}
	if !matches(t, "dname | loc", firstNamed(t, doc, "loc")) {
		t.Fatal("union should match loc")
	}
	if matches(t, "dname | loc", firstNamed(t, doc, "emp")) {
		t.Fatal("union should not match emp")
	}
}

func TestSplitUnion(t *testing.T) {
	p := MustParsePattern("dname | loc|emp")
	parts := p.SplitUnion()
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[1].String() != "loc" {
		t.Fatalf("part src = %q", parts[1].String())
	}
	// A single pattern splits to itself.
	q := MustParsePattern("x")
	if qs := q.SplitUnion(); len(qs) != 1 || qs[0] != q {
		t.Fatal("single pattern SplitUnion wrong")
	}
}

func TestDefaultPriorities(t *testing.T) {
	cases := []struct {
		pat  string
		want float64
	}{
		{"dept", 0},
		{"xsl:template", 0},
		{"*", -0.5},
		{"xsl:*", -0.25},
		{"text()", -0.5},
		{"node()", -0.5},
		{"comment()", -0.5},
		{"processing-instruction()", -0.5},
		{`processing-instruction("t")`, 0},
		{"emp/empno", 0.5},
		{"emp[sal > 2000]", 0.5},
		{"/dept", 0.5},
		{"//emp", 0.5},
		{"@id", 0},
		{"@*", -0.5},
	}
	for _, tc := range cases {
		p := MustParsePattern(tc.pat)
		got, err := p.DefaultPriority()
		if err != nil {
			t.Fatalf("priority(%q): %v", tc.pat, err)
		}
		if got != tc.want {
			t.Errorf("priority(%q) = %v, want %v", tc.pat, got, tc.want)
		}
	}
}

func TestPatternRejectsForbiddenAxes(t *testing.T) {
	bad := []string{
		"ancestor::x",
		"parent::x/y",
		"following-sibling::a",
		"x/descendant::y",
	}
	for _, src := range bad {
		if _, err := ParsePattern(src); err == nil {
			t.Errorf("ParsePattern(%q) succeeded, want error", src)
		}
	}
}

func TestPatternVariablesInPredicate(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	emp := firstNamed(t, doc, "emp")
	p := MustParsePattern("emp[sal > $min]")
	ok, err := p.Matches(emp, VarMap{"min": float64(2000)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("emp with sal 2450 should match min 2000")
	}
	ok, _ = p.Matches(emp, VarMap{"min": float64(3000)})
	if ok {
		t.Fatal("emp with sal 2450 should not match min 3000")
	}
}

func TestLastStepAndIsRootOnly(t *testing.T) {
	p := MustParsePattern("emp/empno")
	if p.LastStep().Test.Name != "empno" {
		t.Fatal("LastStep wrong")
	}
	if !MustParsePattern("/").IsRootOnly() {
		t.Fatal("IsRootOnly(/) = false")
	}
	if MustParsePattern("/dept").IsRootOnly() {
		t.Fatal("IsRootOnly(/dept) = true")
	}
}
