package xq2sql

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xmltree"
	"repro/internal/xslt"
	"repro/internal/xtest"
)

func setup(t *testing.T) (*relstore.DB, *sqlxml.Executor, *sqlxml.ViewDef) {
	t.Helper()
	db := relstore.NewDB()
	if err := sqlxml.SetupDeptEmp(db); err != nil {
		t.Fatal(err)
	}
	return db, sqlxml.NewExecutor(db), sqlxml.DeptEmpView()
}

func nows(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	return strings.ReplaceAll(s, "> <", "><")
}

// rewriteExample1 runs the full first stage: XSLT → XQuery (inline).
func rewriteExample1(t *testing.T, ex *sqlxml.Executor, view *sqlxml.ViewDef) *core.Result {
	t.Helper()
	schema, err := ex.DeriveSchema(view)
	if err != nil {
		t.Fatal(err)
	}
	sheet := xtest.Sheet(t, xslt.PaperStylesheet)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inlined {
		t.Fatal("example 1 must fully inline")
	}
	return res
}

// TestExample1FullRewrite is the paper's complete pipeline: stylesheet →
// XQuery (Table 8) → SQL/XML (Table 7) → execution with index access,
// matching Table 6 and the functional baseline.
func TestExample1FullRewrite(t *testing.T) {
	db, ex, view := setup(t)
	res := rewriteExample1(t, ex, view)

	q, err := Translate(res.Module, view)
	if err != nil {
		t.Fatalf("Translate: %v\nquery:\n%s", err, res.Module.String())
	}

	// Shape of Table 7: only SQL/XML generation functions, predicate on
	// SAL, no XPath/XSLT operators.
	sql := q.SQL()
	for _, frag := range []string{
		"XMLConcat(", `XMLElement("H1"`, `XMLElement("H2"`, `XMLElement("table"`,
		"XMLAttributes('2' AS \"border\")",
		"SELECT XMLAgg(", "FROM EMP", "SAL > 2000", "DEPTNO = OUTER.DEPTNO",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("Table 7 SQL missing %q:\n%s", frag, sql)
		}
	}
	if strings.Contains(sql, "xsl") || strings.Contains(sql, "fn:") {
		t.Fatalf("rewritten SQL must not contain XSLT/XPath operators:\n%s", sql)
	}

	// Execution: the plan uses the sal B-tree index once created.
	if err := db.Table("emp").CreateIndex("sal"); err != nil {
		t.Fatal(err)
	}
	if err := db.Table("emp").CreateIndex("deptno"); err != nil {
		t.Fatal(err)
	}
	explain := ex.ExplainQuery(q)
	// The correlated deptno equality plans as a B-tree probe per outer row.
	if !strings.Contains(explain, "INDEX PROBE emp") {
		t.Fatalf("plan should use the emp index:\n%s", explain)
	}

	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("rows = %d", len(docs))
	}

	// Compare against the functional path: materialize view rows, run the
	// XSLT interpreter.
	views, err := ex.MaterializeView(view)
	if err != nil {
		t.Fatal(err)
	}
	eng := xslt.New(xtest.Sheet(t, xslt.PaperStylesheet))
	for i := range docs {
		want, err := eng.TransformToString(views[i])
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		docs[i].Serialize(&sb, xmltree.SerializeOptions{OmitDecl: true})
		if nows(sb.String()) != nows(want) {
			t.Fatalf("row %d mismatch:\n got:  %s\n want: %s", i, nows(sb.String()), nows(want))
		}
	}
}

// TestExample2Combined reproduces Table 11: the XQuery of Table 10 composed
// over the XSLT view collapses to the XMLAgg subquery alone.
func TestExample2Combined(t *testing.T) {
	db, ex, view := setup(t)
	res := rewriteExample1(t, ex, view)

	// Table 10: for $tr in ./table/tr return $tr.
	projected, err := ProjectPath(res.Module, []string{"table", "tr"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(projected, view)
	if err != nil {
		t.Fatalf("Translate: %v\nprojected:\n%s", err, projected.String())
	}
	sql := q.SQL()
	// Table 11 shape: just the aggregated tr rows with both predicates.
	for _, frag := range []string{
		`XMLElement("tr"`, "SAL > 2000", "DEPTNO = OUTER.DEPTNO", "FROM EMP",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("Table 11 SQL missing %q:\n%s", frag, sql)
		}
	}
	// The pruned query must NOT build H1/H2 headers or td headers.
	for _, gone := range []string{"H1", "H2", "EmpNo"} {
		if strings.Contains(sql, gone) {
			t.Errorf("combined optimisation failed to prune %q:\n%s", gone, sql)
		}
	}

	// Execution matches the composition of the two functional stages.
	_ = db.Table("emp").CreateIndex("sal")
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("rows = %d", len(docs))
	}
	got0 := nows(render(docs[0]))
	if got0 != "<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>" {
		t.Fatalf("row 0 = %s", got0)
	}
	got1 := nows(render(docs[1]))
	if got1 != "<tr><td>7954</td><td>SMITH</td><td>4900</td></tr>" {
		t.Fatalf("row 1 = %s", got1)
	}
}

func render(n *xmltree.Node) string {
	var sb strings.Builder
	n.Serialize(&sb, xmltree.SerializeOptions{OmitDecl: true})
	return sb.String()
}

func TestScalarAggregateLowering(t *testing.T) {
	db, ex, view := setup(t)
	schema, _ := ex.DeriveSchema(view)
	sheet := xtest.Sheet(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<stats n="{count(employees/emp)}"><xsl:value-of select="sum(employees/emp/sal)"/></stats>
		</xsl:template>
	</xsl:stylesheet>`)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(res.Module, view)
	if err != nil {
		t.Fatalf("Translate: %v\n%s", err, res.Module.String())
	}
	sql := q.SQL()
	if !strings.Contains(sql, "SELECT COUNT(*)") || !strings.Contains(sql, "SELECT SUM(SAL)") {
		t.Fatalf("aggregates not lowered:\n%s", sql)
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got := nows(render(docs[0]))
	if got != `<stats n="2">3750</stats>` {
		t.Fatalf("agg result = %s", got)
	}
	_ = db
}

func TestFallbackOnUnsupportedShapes(t *testing.T) {
	_, ex, view := setup(t)
	schema, _ := ex.DeriveSchema(view)

	// A condition on a computed string function does not map to a simple
	// column predicate; the caller must fall back.
	sheet := xtest.Sheet(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<xsl:choose><xsl:when test="contains(dname, 'X')"><a/></xsl:when><xsl:otherwise><b/></xsl:otherwise></xsl:choose>
		</xsl:template>
	</xsl:stylesheet>`)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Translate(res.Module, view)
	if err == nil {
		t.Fatal("conditional construction should not lower")
	}
	if !errors.Is(err, ErrNotRelational) {
		t.Fatalf("error should be ErrNotRelational, got %v", err)
	}
}

func TestTranslateRejectsFunctions(t *testing.T) {
	_, _, view := setup(t)
	m := xtest.XQuery(t, `declare variable $var000 := .;
declare function local:f($x) { $x };
local:f(1)`)
	if _, err := Translate(m, view); err == nil {
		t.Fatal("function-bearing modules must not lower")
	}
}

func TestProjectPathMisses(t *testing.T) {
	m := xtest.XQuery(t, `declare variable $var000 := .; <a><b/></a>`)
	if _, err := ProjectPath(m, []string{"zz"}); err == nil {
		t.Fatal("missing path should fail")
	}
	out, err := ProjectPath(m, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Body.String(), "<b/>") {
		t.Fatalf("projection wrong: %s", out.Body.String())
	}
	// Empty path is the identity.
	same, err := ProjectPath(m, nil)
	if err != nil || same != m {
		t.Fatal("empty projection should return the module")
	}
}

func TestOrderByLowering(t *testing.T) {
	db, ex, view := setup(t)
	schema, _ := ex.DeriveSchema(view)
	sheet := xtest.Sheet(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<xsl:for-each select="employees/emp"><xsl:sort select="sal" data-type="number" order="descending"/><e><xsl:value-of select="ename"/></e></xsl:for-each>
		</xsl:template>
	</xsl:stylesheet>`)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(res.Module, view)
	if err != nil {
		t.Fatalf("Translate: %v\n%s", err, res.Module.String())
	}
	if !strings.Contains(q.SQL(), "ORDER BY SAL DESC") {
		t.Fatalf("order by not lowered:\n%s", q.SQL())
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := nows(render(docs[0])); got != "<e>CLARK</e><e>MILLER</e>" {
		t.Fatalf("ordered result = %s", got)
	}
	_ = db
}

// TestConditionalLowering covers if→CASE lowering (the 'metric' mechanism)
// including flipped operands and conjunctions.
func TestConditionalLowering(t *testing.T) {
	db, ex, view := setup(t)
	schema, _ := ex.DeriveSchema(view)
	sheet := xtest.Sheet(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<xsl:for-each select="employees/emp">
				<xsl:choose>
					<xsl:when test="2000 &lt; sal and sal &lt; 4000"><mid id="{empno}"/></xsl:when>
					<xsl:otherwise><other/></xsl:otherwise>
				</xsl:choose>
			</xsl:for-each>
		</xsl:template>
	</xsl:stylesheet>`)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(res.Module, view)
	if err != nil {
		t.Fatalf("Translate: %v\n%s", err, res.Module.String())
	}
	sql := q.SQL()
	if !strings.Contains(sql, "CASE WHEN") || !strings.Contains(sql, "SAL > 2000 AND SAL < 4000") {
		t.Fatalf("conditional SQL wrong:\n%s", sql)
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got := nows(render(docs[0]))
	if got != `<mid id="7782"/><other/>` {
		t.Fatalf("conditional result = %s", got)
	}
	_ = db
}

// TestComputedConstructorLowering covers xsl:element/xsl:attribute lowering
// (the 'creation' mechanism).
func TestComputedConstructorLowering(t *testing.T) {
	_, ex, view := setup(t)
	schema, _ := ex.DeriveSchema(view)
	sheet := xtest.Sheet(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<xsl:element name="rec"><xsl:attribute name="city"><xsl:value-of select="loc"/></xsl:attribute><xsl:value-of select="dname"/></xsl:element>
		</xsl:template>
	</xsl:stylesheet>`)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(res.Module, view)
	if err != nil {
		t.Fatalf("Translate: %v\n%s", err, res.Module.String())
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := nows(render(docs[0])); got != `<rec city="NEW YORK">ACCOUNTING</rec>` {
		t.Fatalf("computed constructor result = %s", got)
	}
}

// TestPredicateVariants covers flipped comparisons and string literals in
// path predicates.
func TestPredicateVariants(t *testing.T) {
	_, ex, view := setup(t)
	schema, _ := ex.DeriveSchema(view)
	sheet := xtest.Sheet(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<hit n="{count(employees/emp[2000 &lt;= sal])}" byname="{count(employees/emp[ename = 'CLARK'])}"/>
		</xsl:template>
	</xsl:stylesheet>`)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(res.Module, view)
	if err != nil {
		t.Fatalf("Translate: %v\n%s", err, res.Module.String())
	}
	sql := q.SQL()
	if !strings.Contains(sql, "SAL >= 2000") || !strings.Contains(sql, "ENAME = 'CLARK'") {
		t.Fatalf("predicate SQL wrong:\n%s", sql)
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := nows(render(docs[0])); got != `<hit n="1" byname="1"/>` {
		t.Fatalf("predicate result = %s", got)
	}
}
