package xq2sql

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xquery"
)

// keyedView builds a table row(id, name) with n rows and a view exposing the
// key as an attribute: <row id="..."><name>...</name></row>.
func keyedView(t *testing.T, n int) (*relstore.DB, *sqlxml.Executor, *sqlxml.ViewDef) {
	t.Helper()
	db := relstore.NewDB()
	tab, err := db.CreateTable("row",
		relstore.Column{Name: "id", Type: relstore.IntCol},
		relstore.Column{Name: "name", Type: relstore.StringCol})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tab.Insert(int64(i), "name-"+strings.Repeat("x", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	view := &sqlxml.ViewDef{
		Name:  "rows",
		Table: "row",
		Body: &sqlxml.Element{
			Name:  "row",
			Attrs: []sqlxml.Attr{{Name: "id", Value: &sqlxml.Column{Name: "id"}}},
			Children: []sqlxml.XMLExpr{
				&sqlxml.Element{Name: "name", Children: []sqlxml.XMLExpr{&sqlxml.Column{Name: "name"}}},
			},
		},
	}
	return db, sqlxml.NewExecutor(db), view
}

func mustModule(t *testing.T, src string) *xquery.Module {
	t.Helper()
	m, err := xquery.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return m
}

// TestRootPredicateHoisting: a predicate on the view-root step becomes the
// query's WHERE clause (selection pushdown) instead of a translation
// failure.
func TestRootPredicateHoisting(t *testing.T) {
	_, ex, view := keyedView(t, 20)
	m := mustModule(t, `declare variable $var000 := .;
<doc>{fn:string($var000/row[@id = 7]/name)}</doc>`)
	q, err := Translate(m, view)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	want := []relstore.Pred{{Col: "id", Op: relstore.CmpEq, Val: int64(7)}}
	if !predsEqual(q.Where, want) {
		t.Fatalf("Where = %v, want %v", q.Where, want)
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("selective query produced %d rows, want 1", len(docs))
	}
}

// TestRootPredicateParam: a free variable in the predicate lowers to a
// ParamValue placeholder — one compiled plan, bound per run.
func TestRootPredicateParam(t *testing.T) {
	_, _, view := keyedView(t, 5)
	m := mustModule(t, `declare variable $var000 := .;
<doc>{fn:string($var000/row[@id = $id]/name)}</doc>`)
	q, err := Translate(m, view)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	want := []relstore.Pred{{Col: "id", Op: relstore.CmpEq, Val: relstore.ParamValue("id")}}
	if !predsEqual(q.Where, want) {
		t.Fatalf("Where = %v, want %v", q.Where, want)
	}
	if !relstore.HasParams(q.Where) {
		t.Fatal("plan should report unbound parameters")
	}
}

// TestRootPredicateChildElement: predicates over root child elements (not
// just attributes) hoist too.
func TestRootPredicateChildElement(t *testing.T) {
	_, ex, view := keyedView(t, 10)
	m := mustModule(t, `declare variable $var000 := .;
<doc>{fn:string($var000/row[name = "name-"]/name)}</doc>`)
	q, err := Translate(m, view)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if len(q.Where) != 1 || q.Where[0].Col != "name" {
		t.Fatalf("Where = %v", q.Where)
	}
	docs, err := ex.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0, 3, 6, 9 have name "name-" (i%3 == 0).
	if len(docs) != 4 {
		t.Fatalf("rows = %d, want 4", len(docs))
	}
}

// TestRootPredicateDisagreement: two navigations with different root
// predicates cannot share one hoisted WHERE — the translation must fall
// back rather than silently filter the other navigation.
func TestRootPredicateDisagreement(t *testing.T) {
	_, _, view := keyedView(t, 5)
	m := mustModule(t, `declare variable $var000 := .;
<doc>{fn:string($var000/row[@id = 1]/name)}{fn:string($var000/row[@id = 2]/name)}</doc>`)
	_, err := Translate(m, view)
	if !errors.Is(err, ErrNotRelational) {
		t.Fatalf("err = %v, want ErrNotRelational", err)
	}
}

// TestExtractWhere covers the WithWhere string path: view-attribute names,
// view-leaf names, raw column fallthrough, params, and rejections.
func TestExtractWhere(t *testing.T) {
	_, _, view := keyedView(t, 1)
	cases := []struct {
		src  string
		want []relstore.Pred
	}{
		{"@id = 3", []relstore.Pred{{Col: "id", Op: relstore.CmpEq, Val: int64(3)}}},
		{"name = 'x'", []relstore.Pred{{Col: "name", Op: relstore.CmpEq, Val: "x"}}},
		{"id >= 10", []relstore.Pred{{Col: "id", Op: relstore.CmpGe, Val: int64(10)}}}, // raw column
		{"@id = $key", []relstore.Pred{{Col: "id", Op: relstore.CmpEq, Val: relstore.ParamValue("key")}}},
		{"3 < id and id != 9", []relstore.Pred{
			{Col: "id", Op: relstore.CmpGt, Val: int64(3)},
			{Col: "id", Op: relstore.CmpNe, Val: int64(9)},
		}},
	}
	for _, tc := range cases {
		got, err := ExtractWhere(view, tc.src)
		if err != nil {
			t.Errorf("ExtractWhere(%q): %v", tc.src, err)
			continue
		}
		if !predsEqual(got, tc.want) {
			t.Errorf("ExtractWhere(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
	for _, bad := range []string{"@missing = 1", "id = 1 or id = 2", "count(x) = 1"} {
		if got, err := ExtractWhere(view, bad); err == nil {
			t.Errorf("ExtractWhere(%q) = %v, want error", bad, got)
		}
	}
}
