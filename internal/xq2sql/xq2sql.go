// Package xq2sql implements the second rewrite stage of the paper (§2,
// Tables 7 and 11): an XQuery produced by the XSLT rewriter, running over an
// XMLType view generated from relational tables, is lowered to a SQL/XML
// query that constructs the result directly from the columns — "it does not
// contain any XSLT or XPath operators at all". XPath value predicates
// become relational predicates eligible for B-tree index access.
//
// The translator handles the expression shapes the inline-mode rewriter
// emits (FLWOR over view paths, direct constructors, fn:string/fn:concat of
// column-backed leaves, count/sum aggregates). Shapes outside the mapping
// return ErrNotRelational, and callers fall back to functional XQuery
// evaluation over the materialized view — mirroring the paper, where the
// rewrite applies when the structure is known and is abandoned otherwise.
package xq2sql

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/faultpoint"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// ErrNotRelational marks queries that cannot be lowered to SQL/XML; the
// caller should fall back to functional evaluation.
var ErrNotRelational = errors.New("xq2sql: query shape does not map to the relational view")

func notRelational(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNotRelational, fmt.Sprintf(format, args...))
}

// viewNode is a position in the view's constructor tree.
type viewNode struct {
	// elem is the element constructor at this position (nil at a pure
	// column/literal position).
	name string
	// table supplying columns at this position.
	table string
	// children by element name, in declaration order.
	children []*viewNode
	// attrs maps attribute names to their backing columns (XMLAttributes
	// entries whose value is a column reference).
	attrs map[string]string
	// col is the backing column of a text leaf ("" otherwise).
	col string
	// agg links to the repeated child produced by an XMLAgg subquery.
	agg *aggInfo
}

type aggInfo struct {
	sub  *sqlxml.SubQuery
	body *viewNode // the element produced per inner row
}

func (n *viewNode) child(name string) *viewNode {
	for _, c := range n.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

// buildViewTree converts a view body into the navigable form.
func buildViewTree(expr sqlxml.XMLExpr, table string) (*viewNode, error) {
	el, ok := expr.(*sqlxml.Element)
	if !ok {
		return nil, notRelational("view body must be an XMLElement")
	}
	node := &viewNode{name: el.Name, table: table}
	for _, a := range el.Attrs {
		if c, ok := a.Value.(*sqlxml.Column); ok {
			if node.attrs == nil {
				node.attrs = map[string]string{}
			}
			node.attrs[a.Name] = c.Name
		}
	}
	var walk func(children []sqlxml.XMLExpr) error
	walk = func(children []sqlxml.XMLExpr) error {
		for _, c := range children {
			switch x := c.(type) {
			case *sqlxml.Element:
				kid, err := buildViewTree(x, table)
				if err != nil {
					return err
				}
				node.children = append(node.children, kid)
			case *sqlxml.Column:
				node.col = x.Name
			case *sqlxml.Literal:
				// constant text content; nothing to bind
			case *sqlxml.Concat:
				if err := walk(x.Items); err != nil {
					return err
				}
			case *sqlxml.Agg:
				body, err := buildViewTree(x.Sub.Body, x.Sub.Table)
				if err != nil {
					return err
				}
				body.agg = &aggInfo{sub: x.Sub, body: body}
				node.children = append(node.children, body)
			case *sqlxml.ScalarAgg:
				// aggregate text content; not navigable below
			default:
				return notRelational("unsupported view construct %T", c)
			}
		}
		return nil
	}
	if err := walk(el.Children); err != nil {
		return nil, err
	}
	return node, nil
}

// binding is what an XQuery variable resolves to.
type binding struct {
	node *viewNode
	// doc marks the $var000 binding (the document above the root element).
	doc bool
}

// translator lowers one module.
type translator struct {
	view *sqlxml.ViewDef
	root *viewNode
	vars map[string]binding

	// where collects predicates hoisted from view-root steps (selection
	// pushdown): `$var000/dept[deptno = 10]/...` filters the DRIVING table,
	// so the predicate belongs in Query.Where where the access-path chooser
	// can turn it into an index probe. whereSet distinguishes "no root
	// navigation seen" from "root navigated without predicates" — every
	// doc-rooted navigation must agree on the root predicates, or hoisting
	// would change which rows the other navigations see.
	where    []relstore.Pred
	whereSet bool
}

// hoistRootPreds records predicates found on a view-root step, enforcing
// agreement across navigations.
func (tr *translator) hoistRootPreds(ps []relstore.Pred) error {
	if !tr.whereSet {
		tr.where, tr.whereSet = ps, true
		return nil
	}
	if !predsEqual(tr.where, ps) {
		return notRelational("navigations disagree on view-root predicates; cannot hoist the selection")
	}
	return nil
}

func predsEqual(a, b []relstore.Pred) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Translate lowers a generated XQuery module into a SQL/XML query over the
// view's driving table. The module must follow the inline-rewriter shape:
// `declare variable $var000 := .;` binding the view row document.
func Translate(m *xquery.Module, view *sqlxml.ViewDef) (*sqlxml.Query, error) {
	if err := faultpoint.Hit("xq2sql.translate"); err != nil {
		return nil, err
	}
	root, err := buildViewTree(view.Body, view.Table)
	if err != nil {
		return nil, err
	}
	tr := &translator{view: view, root: root, vars: map[string]binding{}}

	if len(m.Funcs) > 0 {
		return nil, notRelational("query declares functions (non-inline rewrite); only fully inlined queries lower to SQL/XML")
	}
	for _, v := range m.Vars {
		if _, ok := xquery.Unwrap(v.Init).(xquery.ContextItem); ok {
			tr.vars[v.Name] = binding{doc: true}
			continue
		}
		return nil, notRelational("unsupported prolog variable $%s", v.Name)
	}

	body, err := tr.exprList(m.Body)
	if err != nil {
		return nil, err
	}
	q := &sqlxml.Query{Table: view.Table, Where: tr.where, Body: concatOf(body)}
	hoistTopCond(q)
	return q, nil
}

// hoistTopCond promotes a whole-body conditional (a match-pattern predicate
// compiled into `if (...) then ... else ()`) into the query's WHERE clause:
// a driving row that fails the condition produces nothing, so filtering the
// row at the access path is equivalent to constructing an empty result — and
// makes the predicate eligible for index access.
func hoistTopCond(q *sqlxml.Query) {
	c, ok := q.Body.(*sqlxml.Cond)
	if !ok || c.Else != nil || len(c.Preds) == 0 {
		return
	}
	q.Where = append(q.Where, c.Preds...)
	q.Body = c.Then
}

func concatOf(items []sqlxml.XMLExpr) sqlxml.XMLExpr {
	if len(items) == 1 {
		return items[0]
	}
	return &sqlxml.Concat{Items: items}
}

// exprList translates an expression into a list of XML constructors.
func (tr *translator) exprList(e xquery.Expr) ([]sqlxml.XMLExpr, error) {
	switch x := e.(type) {
	case *xquery.Annotated:
		return tr.exprList(x.X)
	case xquery.EmptySeq:
		return nil, nil
	case *xquery.Sequence:
		var out []sqlxml.XMLExpr
		for _, item := range x.Items {
			sub, err := tr.exprList(item)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case xquery.TextLit:
		return []sqlxml.XMLExpr{&sqlxml.Literal{Text: string(x)}}, nil
	case xquery.StringLit:
		return []sqlxml.XMLExpr{&sqlxml.Literal{Text: string(x)}}, nil
	case *xquery.CompText:
		return tr.textValue(x.Body)
	case *xquery.DirectElem:
		el, err := tr.directElem(x)
		if err != nil {
			return nil, err
		}
		return []sqlxml.XMLExpr{el}, nil
	case *xquery.FuncCall:
		return tr.funcValue(x)
	case *xquery.FLWOR:
		return tr.flwor(x)
	case *xquery.IfExpr:
		return tr.condExpr(x)
	case *xquery.CompElem:
		return tr.compElem(x)
	}
	return nil, notRelational("unsupported expression %T", e)
}

// textValue translates the body of text{...}: fn:string(path) → Column,
// literals stay literal, fn:concat mixes.
func (tr *translator) textValue(e xquery.Expr) ([]sqlxml.XMLExpr, error) {
	switch x := xquery.Unwrap(e).(type) {
	case xquery.StringLit:
		return []sqlxml.XMLExpr{&sqlxml.Literal{Text: string(x)}}, nil
	case *xquery.FuncCall:
		return tr.funcValue(x)
	}
	return nil, notRelational("unsupported text content %T", e)
}

func (tr *translator) funcValue(f *xquery.FuncCall) ([]sqlxml.XMLExpr, error) {
	switch strings.TrimPrefix(f.Name, "fn:") {
	case "string":
		if len(f.Args) != 1 {
			return nil, notRelational("fn:string arity")
		}
		// fn:string over an aggregate lowers through the aggregate.
		if inner, ok := xquery.Unwrap(f.Args[0]).(*xquery.FuncCall); ok {
			return tr.funcValue(inner)
		}
		if lit, ok := xquery.Unwrap(f.Args[0]).(xquery.StringLit); ok {
			return []sqlxml.XMLExpr{&sqlxml.Literal{Text: string(lit)}}, nil
		}
		col, err := tr.columnOf(f.Args[0])
		if err != nil {
			return nil, err
		}
		return []sqlxml.XMLExpr{col}, nil
	case "concat":
		var out []sqlxml.XMLExpr
		for _, a := range f.Args {
			sub, err := tr.textValue(a)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case "count", "sum":
		agg, err := tr.scalarAgg(strings.TrimPrefix(f.Name, "fn:"), f.Args)
		if err != nil {
			return nil, err
		}
		return []sqlxml.XMLExpr{agg}, nil
	}
	return nil, notRelational("unsupported function %s in content", f.Name)
}

// scalarAgg lowers count(path)/sum(path) over an aggregated view child into
// a SQL aggregate subquery.
func (tr *translator) scalarAgg(fn string, args []xquery.Expr) (sqlxml.XMLExpr, error) {
	if len(args) != 1 {
		return nil, notRelational("%s arity", fn)
	}
	node, preds, trailingCol, err := tr.resolveAggPath(args[0])
	if err != nil {
		return nil, err
	}
	sub := &sqlxml.SubQuery{
		Table:     node.agg.sub.Table,
		CorrInner: node.agg.sub.CorrInner,
		CorrOuter: node.agg.sub.CorrOuter,
		Where:     append(append([]relstore.Pred{}, node.agg.sub.Where...), preds...),
	}
	col := trailingCol
	if fn == "sum" && col == "" {
		return nil, notRelational("sum() needs a column-backed path")
	}
	return &sqlxml.ScalarAgg{Fn: fn, Col: col, Sub: sub}, nil
}

// resolveAggPath resolves a path ending at (or just below) an aggregated
// child: returns the agg node, translated predicates, and the trailing
// column when the path descends one leaf further.
func (tr *translator) resolveAggPath(e xquery.Expr) (*viewNode, []relstore.Pred, string, error) {
	path, ok := xquery.Unwrap(e).(*xquery.Path)
	if !ok {
		return nil, nil, "", notRelational("aggregate argument must be a path")
	}
	base, steps, err := tr.pathBase(path)
	if err != nil {
		return nil, nil, "", err
	}
	node := base
	var preds []relstore.Pred
	for i, s := range steps {
		if s.Axis != xpath.AxisChild || s.Test.Kind != xpath.TestName {
			return nil, nil, "", notRelational("unsupported step %s", s.Test.String())
		}
		next := node.child(s.Test.Name)
		if next == nil {
			return nil, nil, "", notRelational("no child %q in view structure", s.Test.Name)
		}
		node = next
		if node.agg != nil {
			ps, err := tr.stepPreds(s, node)
			if err != nil {
				return nil, nil, "", err
			}
			preds = ps
			rest := steps[i+1:]
			switch len(rest) {
			case 0:
				return node, preds, "", nil
			case 1:
				leaf := node.child(rest[0].Test.Name)
				if leaf == nil || leaf.col == "" {
					return nil, nil, "", notRelational("aggregate path tail %q is not column-backed", rest[0].Test.String())
				}
				return node, preds, leaf.col, nil
			default:
				return nil, nil, "", notRelational("aggregate path too deep")
			}
		}
		if len(s.Preds) > 0 {
			return nil, nil, "", notRelational("predicate before the aggregated child")
		}
	}
	return nil, nil, "", notRelational("path does not reach an aggregated child")
}

// directElem lowers a direct constructor.
func (tr *translator) directElem(d *xquery.DirectElem) (sqlxml.XMLExpr, error) {
	el := &sqlxml.Element{Name: d.Name}
	for _, a := range d.Attrs {
		if len(a.Parts) == 1 && a.Parts[0].Expr == nil {
			el.Attrs = append(el.Attrs, sqlxml.Attr{Name: a.Name, Value: &sqlxml.Literal{Text: a.Parts[0].Text}})
			continue
		}
		if len(a.Parts) == 1 {
			vals, err := tr.textValue(a.Parts[0].Expr)
			if err != nil {
				return nil, err
			}
			if len(vals) == 1 {
				el.Attrs = append(el.Attrs, sqlxml.Attr{Name: a.Name, Value: vals[0]})
				continue
			}
		}
		return nil, notRelational("unsupported attribute template on %s/@%s", d.Name, a.Name)
	}
	for _, c := range d.Children {
		// Computed attribute constructors with a static name attach to
		// the element (xsl:attribute lowering).
		if ca, ok := xquery.Unwrap(c).(*xquery.CompAttr); ok {
			name, okn := xquery.Unwrap(ca.Name).(xquery.StringLit)
			if !okn {
				return nil, notRelational("computed attribute name on %s", d.Name)
			}
			vals, err := tr.textValue(ca.Body)
			if err != nil {
				return nil, err
			}
			val := concatOf(vals)
			el.Attrs = append(el.Attrs, sqlxml.Attr{Name: string(name), Value: val})
			continue
		}
		sub, err := tr.exprList(c)
		if err != nil {
			return nil, err
		}
		el.Children = append(el.Children, sub...)
	}
	return el, nil
}

// flwor lowers let bindings (navigation) and for loops over aggregated
// children (XMLAgg subqueries).
func (tr *translator) flwor(f *xquery.FLWOR) ([]sqlxml.XMLExpr, error) {
	if f.Where != nil {
		return nil, notRelational("where clauses are not lowered (predicates belong in the path)")
	}
	if len(f.Clauses) == 0 {
		return tr.exprList(f.Return)
	}
	cl := f.Clauses[0]
	rest := &xquery.FLWOR{Clauses: f.Clauses[1:], Where: f.Where, Order: f.Order, Return: f.Return}
	if len(rest.Clauses) == 0 && rest.Where == nil && len(rest.Order) == 0 {
		// fall through to Return directly when this was the last clause
	}

	switch cl.Kind {
	case xquery.ClauseLet:
		node, preds, err := tr.resolveNav(cl.In)
		if err != nil {
			return nil, err
		}
		if len(preds) > 0 {
			return nil, notRelational("predicates on a let-bound single child")
		}
		saved, had := tr.vars[cl.Var]
		tr.vars[cl.Var] = binding{node: node}
		defer func() {
			if had {
				tr.vars[cl.Var] = saved
			} else {
				delete(tr.vars, cl.Var)
			}
		}()
		return tr.tail(rest)

	case xquery.ClauseFor:
		node, preds, err := tr.resolveNav(cl.In)
		if err != nil {
			return nil, err
		}
		if node.agg == nil {
			return nil, notRelational("for loop over a non-repeating view child %q", node.name)
		}
		if cl.At != "" {
			return nil, notRelational("positional variables are not lowered")
		}
		saved, had := tr.vars[cl.Var]
		tr.vars[cl.Var] = binding{node: node}
		defer func() {
			if had {
				tr.vars[cl.Var] = saved
			} else {
				delete(tr.vars, cl.Var)
			}
		}()

		sub := &sqlxml.SubQuery{
			Table:     node.agg.sub.Table,
			CorrInner: node.agg.sub.CorrInner,
			CorrOuter: node.agg.sub.CorrOuter,
			Where:     append(append([]relstore.Pred{}, node.agg.sub.Where...), preds...),
		}
		// order by a column of the inner table.
		if len(rest.Order) > 0 {
			if len(rest.Order) > 1 {
				return nil, notRelational("multiple order keys")
			}
			col, desc, err := tr.orderColumn(rest.Order[0], cl.Var)
			if err != nil {
				return nil, err
			}
			sub.OrderBy, sub.Descending = col, desc
			rest.Order = nil
		}
		body, err := tr.tail(rest)
		if err != nil {
			return nil, err
		}
		sub.Body = concatOf(body)
		return []sqlxml.XMLExpr{&sqlxml.Agg{Sub: sub}}, nil
	}
	return nil, notRelational("unsupported clause")
}

func (tr *translator) tail(rest *xquery.FLWOR) ([]sqlxml.XMLExpr, error) {
	if len(rest.Clauses) == 0 && rest.Where == nil && len(rest.Order) == 0 {
		return tr.exprList(rest.Return)
	}
	return tr.flwor(rest)
}

// orderColumn maps an order key like fn:number($v/sal) to an inner column.
func (tr *translator) orderColumn(k xquery.OrderKey, loopVar string) (string, bool, error) {
	e := xquery.Unwrap(k.Expr)
	if f, ok := e.(*xquery.FuncCall); ok && len(f.Args) == 1 {
		switch strings.TrimPrefix(f.Name, "fn:") {
		case "number", "string":
			e = xquery.Unwrap(f.Args[0])
		}
	}
	col, err := tr.columnOf(e)
	if err != nil {
		return "", false, err
	}
	c, ok := col.(*sqlxml.Column)
	if !ok {
		return "", false, notRelational("order key is not a column")
	}
	return c.Name, k.Descending, nil
}

// resolveNav resolves a navigation expression (a path from a bound
// variable) to a view node plus any translated predicates.
func (tr *translator) resolveNav(e xquery.Expr) (*viewNode, []relstore.Pred, error) {
	path, ok := xquery.Unwrap(e).(*xquery.Path)
	if !ok {
		if v, okv := xquery.Unwrap(e).(xquery.VarRef); okv {
			if b, okb := tr.vars[string(v)]; okb && b.node != nil {
				return b.node, nil, nil
			}
		}
		return nil, nil, notRelational("unsupported navigation %T", e)
	}
	base, steps, err := tr.pathBase(path)
	if err != nil {
		return nil, nil, err
	}
	node := base
	var preds []relstore.Pred
	for _, s := range steps {
		if s.Axis != xpath.AxisChild || s.Test.Kind != xpath.TestName {
			return nil, nil, notRelational("unsupported step %q", s.Test.String())
		}
		next := node.child(s.Test.Name)
		if next == nil {
			return nil, nil, notRelational("no child %q under %q in the view", s.Test.Name, node.name)
		}
		node = next
		ps, err := tr.stepPreds(s, node)
		if err != nil {
			return nil, nil, err
		}
		preds = append(preds, ps...)
	}
	return node, preds, nil
}

// pathBase resolves the path's base variable to a view node; a doc binding
// consumes the first step (the root element name).
func (tr *translator) pathBase(p *xquery.Path) (*viewNode, []*xquery.Step, error) {
	v, ok := xquery.Unwrap(p.Base).(xquery.VarRef)
	if !ok {
		return nil, nil, notRelational("path base must be a variable, got %T", p.Base)
	}
	b, okb := tr.vars[string(v)]
	if !okb {
		return nil, nil, notRelational("unbound variable $%s", string(v))
	}
	steps := p.Steps
	if b.doc {
		if len(steps) == 0 || steps[0].Test.Kind != xpath.TestName || steps[0].Test.Name != tr.root.name {
			return nil, nil, notRelational("document path must start at the view root element %q", tr.root.name)
		}
		// Predicates on the root step select DRIVING rows: hoist them into
		// the query's WHERE clause (selection pushdown) instead of rejecting.
		ps, err := tr.stepPreds(steps[0], tr.root)
		if err != nil {
			return nil, nil, err
		}
		if err := tr.hoistRootPreds(ps); err != nil {
			return nil, nil, err
		}
		return tr.root, steps[1:], nil
	}
	if b.node == nil {
		return nil, nil, notRelational("variable $%s has no view binding", string(v))
	}
	return b.node, steps, nil
}

// stepPreds translates a step's predicates against the node's backing
// table: each must be `childLeaf op literal`.
func (tr *translator) stepPreds(s *xquery.Step, node *viewNode) ([]relstore.Pred, error) {
	var out []relstore.Pred
	for _, pred := range s.Preds {
		p, err := tr.onePred(pred, node)
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	}
	return out, nil
}

func (tr *translator) onePred(e xquery.Expr, node *viewNode) ([]relstore.Pred, error) {
	switch x := xquery.Unwrap(e).(type) {
	case *xquery.Binary:
		switch x.Op {
		case xquery.OpAnd:
			l, err := tr.onePred(x.L, node)
			if err != nil {
				return nil, err
			}
			r, err := tr.onePred(x.R, node)
			if err != nil {
				return nil, err
			}
			return append(l, r...), nil
		case xquery.OpEq, xquery.OpNe, xquery.OpLt, xquery.OpLe, xquery.OpGt, xquery.OpGe:
			col, lit, flipped, err := tr.predOperands(x.L, x.R, node)
			if err != nil {
				return nil, err
			}
			op, err := cmpOp(x.Op, flipped)
			if err != nil {
				return nil, err
			}
			return []relstore.Pred{{Col: col, Op: op, Val: lit}}, nil
		}
	}
	return nil, notRelational("unsupported predicate %s", e.String())
}

// predOperands identifies the column side and the literal side.
func (tr *translator) predOperands(l, r xquery.Expr, node *viewNode) (col string, lit relstore.Value, flipped bool, err error) {
	if c, ok := tr.relColumn(l, node); ok {
		v, okv := tr.literalValue(r)
		if !okv {
			return "", nil, false, notRelational("comparison against a non-literal")
		}
		return c, v, false, nil
	}
	if c, ok := tr.relColumn(r, node); ok {
		v, okv := tr.literalValue(l)
		if !okv {
			return "", nil, false, notRelational("comparison against a non-literal")
		}
		return c, v, true, nil
	}
	return "", nil, false, notRelational("no column operand in predicate")
}

// relColumn maps a context-relative path (inside a predicate) to a column
// of the node's element: a child text leaf, or an attribute backed by a
// column (`@id` → the id column).
func (tr *translator) relColumn(e xquery.Expr, node *viewNode) (string, bool) {
	p, ok := xquery.Unwrap(e).(*xquery.Path)
	if !ok || p.Base != nil || p.Abs || len(p.Steps) != 1 {
		return "", false
	}
	s := p.Steps[0]
	if s.Test.Kind != xpath.TestName || len(s.Preds) != 0 {
		return "", false
	}
	switch s.Axis {
	case xpath.AxisChild:
		leaf := node.child(s.Test.Name)
		if leaf == nil || leaf.col == "" {
			return "", false
		}
		return leaf.col, true
	case xpath.AxisAttribute:
		col, ok := node.attrs[s.Test.Name]
		return col, ok
	}
	return "", false
}

// literalValue maps a run-time-constant operand to a relstore value. A free
// variable reference (one not bound to a view position) becomes a ParamValue
// placeholder: the plan compiles once and the caller binds the value per run
// (WithParam), so `row[@id = $id]` parameterizes one compiled plan.
func (tr *translator) literalValue(e xquery.Expr) (relstore.Value, bool) {
	switch x := xquery.Unwrap(e).(type) {
	case xquery.NumberLit:
		f := float64(x)
		if f == float64(int64(f)) {
			return int64(f), true
		}
		return f, true
	case xquery.StringLit:
		return string(x), true
	case xquery.VarRef:
		if _, bound := tr.vars[string(x)]; !bound {
			return relstore.ParamValue(string(x)), true
		}
	}
	return nil, false
}

func cmpOp(op xquery.BinOp, flipped bool) (relstore.CmpOp, error) {
	if flipped {
		switch op {
		case xquery.OpLt:
			op = xquery.OpGt
		case xquery.OpLe:
			op = xquery.OpGe
		case xquery.OpGt:
			op = xquery.OpLt
		case xquery.OpGe:
			op = xquery.OpLe
		}
	}
	switch op {
	case xquery.OpEq:
		return relstore.CmpEq, nil
	case xquery.OpNe:
		return relstore.CmpNe, nil
	case xquery.OpLt:
		return relstore.CmpLt, nil
	case xquery.OpLe:
		return relstore.CmpLe, nil
	case xquery.OpGt:
		return relstore.CmpGt, nil
	case xquery.OpGe:
		return relstore.CmpGe, nil
	}
	return 0, notRelational("operator %v", op)
}

// columnOf maps a navigation expression to a Column (or Literal for
// constant leaves).
func (tr *translator) columnOf(e xquery.Expr) (sqlxml.XMLExpr, error) {
	node, preds, err := tr.resolveNav(e)
	if err != nil {
		return nil, err
	}
	if len(preds) > 0 {
		return nil, notRelational("predicates on a scalar path")
	}
	if node.col == "" {
		return nil, notRelational("element %q is not column-backed", node.name)
	}
	return &sqlxml.Column{Name: node.col}, nil
}

// condExpr lowers `if (pred) then A else B` into a CASE-style conditional
// when the condition maps to column predicates on a bound loop variable.
func (tr *translator) condExpr(x *xquery.IfExpr) ([]sqlxml.XMLExpr, error) {
	preds, err := tr.condPreds(x.Cond)
	if err != nil {
		return nil, err
	}
	thenList, err := tr.exprList(x.Then)
	if err != nil {
		return nil, err
	}
	cond := &sqlxml.Cond{Preds: preds, Then: concatOf(thenList)}
	if x.Else != nil {
		if _, empty := xquery.Unwrap(x.Else).(xquery.EmptySeq); !empty {
			elseList, err := tr.exprList(x.Else)
			if err != nil {
				return nil, err
			}
			cond.Else = concatOf(elseList)
		}
	}
	return []sqlxml.XMLExpr{cond}, nil
}

// condPreds maps a boolean expression over a single bound variable's
// columns into relational predicates. Besides direct comparisons and
// conjunctions it lowers the shapes the match-pattern compiler emits
// (internal/core/pattern.go): `$c instance of element(name)` tests that the
// view structure already guarantees, and `fn:exists(($c)[pred])` filters
// whose predicates are column comparisons.
func (tr *translator) condPreds(e xquery.Expr) ([]relstore.Pred, error) {
	switch x := xquery.Unwrap(e).(type) {
	case *xquery.Binary:
		if x.Op == xquery.OpAnd {
			l, err := tr.condPreds(x.L)
			if err != nil {
				return nil, err
			}
			r, err := tr.condPreds(x.R)
			if err != nil {
				return nil, err
			}
			return append(l, r...), nil
		}
		col, lit, flipped, err := tr.condOperands(x.L, x.R)
		if err != nil {
			return nil, err
		}
		op, err := cmpOp(x.Op, flipped)
		if err != nil {
			return nil, err
		}
		return []relstore.Pred{{Col: col, Op: op, Val: lit}}, nil
	case *xquery.FuncCall:
		switch strings.TrimPrefix(x.Name, "fn:") {
		case "true":
			if len(x.Args) == 0 {
				return nil, nil
			}
		case "exists":
			if len(x.Args) == 1 {
				if flt, ok := xquery.Unwrap(x.Args[0]).(*xquery.Filter); ok {
					return tr.filterPreds(flt)
				}
			}
		}
	case *xquery.InstanceOf:
		if tr.instanceStaticallyTrue(x) {
			return nil, nil
		}
	}
	return nil, notRelational("unsupported condition %s", e.String())
}

// filterPreds lowers a match-pattern filter `($c)[pred...]` into column
// predicates against the candidate's view position.
func (tr *translator) filterPreds(flt *xquery.Filter) ([]relstore.Pred, error) {
	node, navPreds, err := tr.resolveNav(flt.Base)
	if err != nil {
		return nil, err
	}
	if len(navPreds) > 0 {
		return nil, notRelational("filter over a predicated path")
	}
	var out []relstore.Pred
	for _, p := range flt.Preds {
		ps, err := tr.onePred(p, node)
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	return out, nil
}

// instanceStaticallyTrue reports whether an `instance of` test is satisfied
// by the view structure itself: the variable is bound to a view element
// whose name matches the tested element type.
func (tr *translator) instanceStaticallyTrue(x *xquery.InstanceOf) bool {
	v, ok := xquery.Unwrap(x.X).(xquery.VarRef)
	if !ok {
		return false
	}
	b, okb := tr.vars[string(v)]
	if !okb || b.node == nil {
		return false
	}
	return x.Type.Kind == xquery.SeqTypeElement && (x.Type.Name == "" || x.Type.Name == b.node.name)
}

// condOperands maps `$v/leaf op literal` (either side) to a column name.
// Unlike predicate context, paths here are variable-rooted.
func (tr *translator) condOperands(l, r xquery.Expr) (string, relstore.Value, bool, error) {
	if col, err := tr.columnOf(l); err == nil {
		if c, ok := col.(*sqlxml.Column); ok {
			v, okv := tr.literalValue(r)
			if !okv {
				return "", nil, false, notRelational("condition against a non-literal")
			}
			return c.Name, v, false, nil
		}
	}
	if col, err := tr.columnOf(r); err == nil {
		if c, ok := col.(*sqlxml.Column); ok {
			v, okv := tr.literalValue(l)
			if !okv {
				return "", nil, false, notRelational("condition against a non-literal")
			}
			return c.Name, v, true, nil
		}
	}
	return "", nil, false, notRelational("condition has no column operand")
}

// compElem lowers a computed element constructor with a static name
// (xsl:element name="..."), treating its body like direct content.
func (tr *translator) compElem(c *xquery.CompElem) ([]sqlxml.XMLExpr, error) {
	name, ok := xquery.Unwrap(c.Name).(xquery.StringLit)
	if !ok {
		return nil, notRelational("computed element name")
	}
	d := &xquery.DirectElem{Name: string(name)}
	if c.Body != nil {
		if seq, okSeq := xquery.Unwrap(c.Body).(*xquery.Sequence); okSeq {
			d.Children = seq.Items
		} else {
			d.Children = []xquery.Expr{c.Body}
		}
	}
	el, err := tr.directElem(d)
	if err != nil {
		return nil, err
	}
	return []sqlxml.XMLExpr{el}, nil
}
