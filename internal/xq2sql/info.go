package xq2sql

import "repro/internal/sqlxml"

// PlanInfo summarizes the shape of a lowered SQL/XML plan — the numbers the
// facade attaches to the sql-rewrite compile span so EXPLAIN ANALYZE can
// show how much of the stylesheet collapsed into relational operators.
type PlanInfo struct {
	// HoistedPreds counts driving predicates hoisted into the query's
	// WHERE clause (each one index-eligible at access-path choice).
	HoistedPreds int
	// AggSubqueries counts correlated XMLAgg subqueries (repeated view
	// children turned into inner-table aggregation).
	AggSubqueries int
	// ScalarAggs counts scalar COUNT/SUM/... subqueries.
	ScalarAggs int
	// Conds counts residual per-row CASE WHEN constructors (predicates
	// that could NOT be hoisted to the access path).
	Conds int
}

// Describe walks a lowered plan and tallies its operator shape.
func Describe(q *sqlxml.Query) PlanInfo {
	info := PlanInfo{HoistedPreds: len(q.Where)}
	countShape(q.Body, &info)
	return info
}

func countShape(e sqlxml.XMLExpr, info *PlanInfo) {
	switch x := e.(type) {
	case *sqlxml.Element:
		for _, a := range x.Attrs {
			countShape(a.Value, info)
		}
		for _, c := range x.Children {
			countShape(c, info)
		}
	case *sqlxml.Concat:
		for _, it := range x.Items {
			countShape(it, info)
		}
	case *sqlxml.Agg:
		info.AggSubqueries++
		if x.Sub != nil {
			info.HoistedPreds += len(x.Sub.Where)
			if x.Sub.Body != nil {
				countShape(x.Sub.Body, info)
			}
		}
	case *sqlxml.ScalarAgg:
		info.ScalarAggs++
	case *sqlxml.Cond:
		info.Conds++
		countShape(x.Then, info)
		if x.Else != nil {
			countShape(x.Else, info)
		}
	}
}
