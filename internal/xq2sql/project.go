package xq2sql

import (
	"repro/internal/xquery"
)

// ProjectPath implements the combined optimisation of paper §2.2 (Example
// 2, Tables 9-11): a FLWOR such as `for $tr in ./table/tr return $tr` runs
// over the OUTPUT of an XSLT transformation. Because the rewritten
// transformation is itself a constructor-shaped XQuery, the outer path can
// be applied statically: constructors not on the path are pruned and the
// matching sub-expressions (with their enclosing for/let context) remain.
//
// steps is the child-element path of the outer query ("table", "tr").
// The result module keeps the prolog of the inner module.
func ProjectPath(m *xquery.Module, steps []string) (*xquery.Module, error) {
	if len(steps) == 0 {
		return m, nil
	}
	body, matched := project(m.Body, steps)
	if !matched {
		return nil, notRelational("path %v does not match the constructed output", steps)
	}
	return &xquery.Module{Vars: m.Vars, Funcs: m.Funcs, Body: body}, nil
}

// project returns the sub-expression(s) of e that produce elements along
// steps, preserving enclosing binding context.
func project(e xquery.Expr, steps []string) (xquery.Expr, bool) {
	switch x := e.(type) {
	case *xquery.Annotated:
		inner, ok := project(x.X, steps)
		if !ok {
			return nil, false
		}
		return inner, true

	case *xquery.Sequence:
		var kept []xquery.Expr
		for _, item := range x.Items {
			if sub, ok := project(item, steps); ok {
				kept = append(kept, sub)
			}
		}
		switch len(kept) {
		case 0:
			return nil, false
		case 1:
			return kept[0], true
		default:
			return &xquery.Sequence{Items: kept}, true
		}

	case *xquery.FLWOR:
		inner, ok := project(x.Return, steps)
		if !ok {
			return nil, false
		}
		return &xquery.FLWOR{Clauses: x.Clauses, Where: x.Where, Order: x.Order, Return: inner}, true

	case *xquery.IfExpr:
		thenE, okT := project(x.Then, steps)
		var elseE xquery.Expr = xquery.EmptySeq{}
		okE := false
		if x.Else != nil {
			if pe, ok := project(x.Else, steps); ok {
				elseE, okE = pe, true
			}
		}
		if !okT && !okE {
			return nil, false
		}
		if !okT {
			thenE = xquery.EmptySeq{}
		}
		return &xquery.IfExpr{Cond: x.Cond, Then: thenE, Else: elseE}, true

	case *xquery.DirectElem:
		if x.Name != steps[0] {
			return nil, false
		}
		if len(steps) == 1 {
			return x, true
		}
		// Descend into the element's children for the remaining steps.
		var kept []xquery.Expr
		for _, c := range x.Children {
			if sub, ok := project(c, steps[1:]); ok {
				kept = append(kept, sub)
			}
		}
		switch len(kept) {
		case 0:
			return nil, false
		case 1:
			return kept[0], true
		default:
			return &xquery.Sequence{Items: kept}, true
		}
	}
	return nil, false
}
