package xq2sql

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xpath"
)

// ExtractWhere parses an XPath comparison expression over the view's root
// element — `deptno = 10`, `@id = $id`, `price > 100 and qty < 5` — and
// lowers it to driving-table predicates. Names resolve against the view
// structure first (a root child leaf or a root attribute maps to its backing
// column); a name the view does not expose is taken as a raw driving-table
// column, which the caller should validate against the table schema.
// Variable references become ParamValue placeholders bound per run.
//
// This is the WithWhere run-option path of the facade: predicates supplied
// at run time join the compiled plan's WHERE clause without recompiling.
func ExtractWhere(view *sqlxml.ViewDef, src string) ([]relstore.Pred, error) {
	e, err := xpath.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("xq2sql: where %q: %w", src, err)
	}
	comps, ok := xpath.Conjuncts(e)
	if !ok {
		return nil, fmt.Errorf("xq2sql: where %q: %w", src,
			notRelational("must be a conjunction of column-vs-constant comparisons"))
	}
	root, err := buildViewTree(view.Body, view.Table)
	if err != nil {
		return nil, err
	}
	preds := make([]relstore.Pred, 0, len(comps))
	for _, c := range comps {
		col, err := resolveWhereName(root, c.Attr, c.Name)
		if err != nil {
			return nil, fmt.Errorf("xq2sql: where %q: %w", src, err)
		}
		op, err := xpathCmpOp(c.Op)
		if err != nil {
			return nil, fmt.Errorf("xq2sql: where %q: %w", src, err)
		}
		val, err := xpathValue(c.Value)
		if err != nil {
			return nil, fmt.Errorf("xq2sql: where %q: %w", src, err)
		}
		preds = append(preds, relstore.Pred{Col: col, Op: op, Val: val})
	}
	return preds, nil
}

// resolveWhereName maps a comparison operand to a driving-table column via
// the view structure, falling through to the raw name for plain elements.
func resolveWhereName(root *viewNode, attr bool, name string) (string, error) {
	if attr {
		if col, ok := root.attrs[name]; ok {
			return col, nil
		}
		return "", notRelational("view root has no attribute @%s", name)
	}
	if leaf := root.child(name); leaf != nil && leaf.col != "" {
		return leaf.col, nil
	}
	// Not a view leaf: treat as a raw driving-table column name.
	return name, nil
}

func xpathCmpOp(op xpath.BinaryOp) (relstore.CmpOp, error) {
	switch op {
	case xpath.OpEq:
		return relstore.CmpEq, nil
	case xpath.OpNeq:
		return relstore.CmpNe, nil
	case xpath.OpLt:
		return relstore.CmpLt, nil
	case xpath.OpLe:
		return relstore.CmpLe, nil
	case xpath.OpGt:
		return relstore.CmpGt, nil
	case xpath.OpGe:
		return relstore.CmpGe, nil
	}
	return 0, notRelational("operator %v", op)
}

func xpathValue(e xpath.Expr) (relstore.Value, error) {
	switch x := e.(type) {
	case xpath.NumberExpr:
		f := float64(x)
		if f == float64(int64(f)) {
			return int64(f), nil
		}
		return f, nil
	case xpath.StringExpr:
		return string(x), nil
	case xpath.VarExpr:
		return relstore.ParamValue(string(x)), nil
	}
	return nil, notRelational("unsupported value %T", e)
}
