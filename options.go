package xsltdb

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"time"
)

// Option configures CompileTransform. Options are functional: compose
// WithForcedStrategy, WithParallelism, WithOuterPath, the governance knobs
// (WithTimeout, WithMaxRows, ...) and WithPlanTag freely; later options win.
type Option interface {
	applyOption(*compileOptions)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*compileOptions)

func (f optionFunc) applyOption(o *compileOptions) { f(o) }

// WithForcedStrategy selects a strategy instead of the automatic
// SQL→XQuery→no-rewrite fallback chain. Compilation fails with
// ErrRewriteFellBack when the forced strategy cannot be reached.
func WithForcedStrategy(s Strategy) Option {
	return optionFunc(func(o *compileOptions) { o.Force = &s })
}

// WithParallelism runs the SQL strategy with row-level parallelism across n
// workers when n > 1 (the paper's "parallel manner" aggregation note).
func WithParallelism(n int) Option {
	return optionFunc(func(o *compileOptions) { o.Parallelism = n })
}

// WithOuterPath composes an XQuery child path over the TRANSFORM OUTPUT
// (paper Example 2): e.g. WithOuterPath("table", "tr").
func WithOuterPath(path ...string) Option {
	return optionFunc(func(o *compileOptions) { o.OuterPath = path })
}

// WithTimeout bounds each Run's (or each cursor's) wall time; expiry
// surfaces as ErrCanceled wrapping context.DeadlineExceeded. Zero means no
// timeout.
func WithTimeout(d time.Duration) Option {
	return optionFunc(func(o *compileOptions) { o.Timeout = d })
}

// WithMaxRows bounds the number of result rows one execution may produce;
// exceeding it aborts the run with ErrLimitExceeded. Zero means unlimited.
func WithMaxRows(n int64) Option {
	return optionFunc(func(o *compileOptions) { o.MaxRows = n })
}

// WithMaxOutputBytes bounds the serialized output one execution may
// produce; exceeding it aborts the run with ErrLimitExceeded. Zero means
// unlimited.
func WithMaxOutputBytes(n int64) Option {
	return optionFunc(func(o *compileOptions) { o.MaxOutputBytes = n })
}

// WithMaxRecursionDepth bounds template/function recursion (runaway
// xsl:apply-templates); exceeding it surfaces ErrRecursionLimit instead of
// a stack overflow. Zero keeps the engine defaults (1024 template frames,
// 2048 XQuery function frames).
func WithMaxRecursionDepth(n int) Option {
	return optionFunc(func(o *compileOptions) { o.MaxRecursionDepth = n })
}

// WithSlowThreshold marks executions of this transform slower than d
// (compile + exec wall time) as slow runs: each is counted in the
// xsltdb_slow_runs_total metric and reported to the WithSlowRunSink
// callback with its full trace. A run that did not attach its own WithTrace
// traces itself when a threshold and sink are configured, so the slow
// report always carries the operator tree. Zero disables slow-run logging.
func WithSlowThreshold(d time.Duration) Option {
	return optionFunc(func(o *compileOptions) { o.SlowThreshold = d })
}

// WithSlowRunSink installs the callback that receives SlowRun reports for
// executions exceeding WithSlowThreshold. The sink runs synchronously at the
// end of the slow run (after the cursor released, for streaming runs) and
// must not block; it may safely call back into the public API.
func WithSlowRunSink(fn func(SlowRun)) Option {
	return optionFunc(func(o *compileOptions) { o.SlowSink = fn })
}

// WithPlanTag namespaces the compiled plan: transforms differing only in
// tag get distinct plan-cache entries — and therefore distinct circuit
// breakers and fallback state. The serving layer uses one tag per tenant so
// a tenant tripping a plan's breaker cannot degrade another tenant's runs.
func WithPlanTag(tag string) Option {
	return optionFunc(func(o *compileOptions) { o.PlanTag = tag })
}

// compileOptions is the folded form of an Option list.
type compileOptions struct {
	// Force selects a strategy instead of the automatic
	// SQL→XQuery→no-rewrite fallback chain.
	Force *Strategy
	// OuterPath composes an XQuery child path over the TRANSFORM OUTPUT
	// (paper Example 2): e.g. []string{"table", "tr"}.
	OuterPath []string
	// Parallelism runs the SQL strategy with row-level parallelism when
	// > 1 (the paper's "parallel manner" aggregation note).
	Parallelism int

	// Timeout bounds each execution's wall time (see WithTimeout).
	Timeout time.Duration
	// MaxRows bounds result rows per execution (see WithMaxRows).
	MaxRows int64
	// MaxOutputBytes bounds serialized output per execution (see
	// WithMaxOutputBytes).
	MaxOutputBytes int64
	// MaxRecursionDepth bounds template/function recursion (see
	// WithMaxRecursionDepth).
	MaxRecursionDepth int
	// SlowThreshold marks runs slower than this as slow (see
	// WithSlowThreshold). Zero disables slow-run logging.
	SlowThreshold time.Duration
	// SlowSink receives SlowRun reports (see WithSlowRunSink).
	SlowSink func(SlowRun)
	// Sampling selects which executions trace themselves into the run-
	// history archive (see WithTraceSampling). The zero value samples
	// nothing. Like the governance options it tunes execution, not the
	// compiled plan, so it is not part of the plan-cache key.
	Sampling TraceSampling
	// PlanTag namespaces the plan-cache entry (see WithPlanTag).
	PlanTag string
}

// buildOptions folds a list of Options into one compileOptions value.
func buildOptions(opts []Option) compileOptions {
	var co compileOptions
	for _, o := range opts {
		o.applyOption(&co)
	}
	return co
}

// planKey identifies one cached compilation: same view (at the same
// version), same stylesheet text, same plan-affecting options. Parallelism
// and the resource-governance options (Timeout, MaxRows, MaxOutputBytes,
// MaxRecursionDepth) are deliberately excluded — they tune execution, not
// the compiled plan — so transforms differing only in those share a cache
// entry (and therefore a circuit breaker).
type planKey struct {
	view    string
	version int
	sheet   [sha256.Size]byte
	opts    string
}

func newPlanKey(view string, version int, stylesheet string, co compileOptions) planKey {
	return planKey{view: view, version: version, sheet: sha256.Sum256([]byte(stylesheet)), opts: co.planKeyPart()}
}

// planKeyPart canonicalizes the plan-affecting options.
func (o compileOptions) planKeyPart() string {
	var sb strings.Builder
	if o.Force != nil {
		fmt.Fprintf(&sb, "force=%d;", *o.Force)
	}
	if len(o.OuterPath) > 0 {
		sb.WriteString("outer=" + strings.Join(o.OuterPath, "\x00") + ";")
	}
	if o.PlanTag != "" {
		sb.WriteString("tag=" + o.PlanTag + ";")
	}
	return sb.String()
}
