package xsltdb

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

// Option configures CompileTransform. Two kinds satisfy it: the functional
// options (WithForcedStrategy, WithParallelism, WithOuterPath) and — for
// backward compatibility — a CompileOptions struct value passed directly.
type Option interface {
	applyOption(*CompileOptions)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*CompileOptions)

func (f optionFunc) applyOption(o *CompileOptions) { f(o) }

// WithForcedStrategy selects a strategy instead of the automatic
// SQL→XQuery→no-rewrite fallback chain. Compilation fails with
// ErrRewriteFellBack when the forced strategy cannot be reached.
func WithForcedStrategy(s Strategy) Option {
	return optionFunc(func(o *CompileOptions) { o.Force = &s })
}

// WithParallelism runs the SQL strategy with row-level parallelism across n
// workers when n > 1 (the paper's "parallel manner" aggregation note).
func WithParallelism(n int) Option {
	return optionFunc(func(o *CompileOptions) { o.Parallelism = n })
}

// WithOuterPath composes an XQuery child path over the TRANSFORM OUTPUT
// (paper Example 2): e.g. WithOuterPath("table", "tr").
func WithOuterPath(path ...string) Option {
	return optionFunc(func(o *CompileOptions) { o.OuterPath = path })
}

// CompileOptions tunes CompileTransform.
//
// Deprecated: this struct form is kept as a shim — it satisfies Option, so
// existing CompileTransform(view, sheet, CompileOptions{...}) calls keep
// working. New code should pass the functional options instead.
type CompileOptions struct {
	// Force selects a strategy instead of the automatic
	// SQL→XQuery→no-rewrite fallback chain.
	Force *Strategy
	// OuterPath composes an XQuery child path over the TRANSFORM OUTPUT
	// (paper Example 2): e.g. []string{"table", "tr"}.
	OuterPath []string
	// Parallelism runs the SQL strategy with row-level parallelism when
	// > 1 (the paper's "parallel manner" aggregation note).
	Parallelism int
}

// applyOption lets a legacy CompileOptions value be passed where Options
// are expected; it replaces the accumulated options wholesale.
func (o CompileOptions) applyOption(dst *CompileOptions) { *dst = o }

// ForceStrategy is a convenience for CompileOptions.Force.
//
// Deprecated: use WithForcedStrategy.
func ForceStrategy(s Strategy) *Strategy { return &s }

// buildOptions folds a list of Options into one CompileOptions value.
func buildOptions(opts []Option) CompileOptions {
	var co CompileOptions
	for _, o := range opts {
		o.applyOption(&co)
	}
	return co
}

// planKey identifies one cached compilation: same view (at the same
// version), same stylesheet text, same plan-affecting options. Parallelism
// is deliberately excluded — it tunes execution, not the compiled plan — so
// transforms differing only in worker count share a cache entry.
type planKey struct {
	view    string
	version int
	sheet   [sha256.Size]byte
	opts    string
}

func newPlanKey(view string, version int, stylesheet string, co CompileOptions) planKey {
	return planKey{view: view, version: version, sheet: sha256.Sum256([]byte(stylesheet)), opts: co.planKeyPart()}
}

// planKeyPart canonicalizes the plan-affecting options.
func (o CompileOptions) planKeyPart() string {
	var sb strings.Builder
	if o.Force != nil {
		fmt.Fprintf(&sb, "force=%d;", *o.Force)
	}
	if len(o.OuterPath) > 0 {
		sb.WriteString("outer=" + strings.Join(o.OuterPath, "\x00") + ";")
	}
	return sb.String()
}
