package xsltdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/sqlxml"
	"repro/internal/xslt"
)

// collect drains a cursor without closing it implicitly via Collect, so
// tests can interleave assertions.
func collect(t *testing.T, c *Cursor) []string {
	t.Helper()
	var out []string
	for {
		row, err := c.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
}

// TestCursorMatchesRunAllStrategies: the streaming cursor must be
// byte-identical to the materializing Run for every strategy.
func TestCursorMatchesRunAllStrategies(t *testing.T) {
	d := newDeptDB(t)
	_ = d.CreateIndex("emp", "deptno")
	for _, s := range []Strategy{StrategySQL, StrategyXQuery, StrategyNoRewrite} {
		ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithForcedStrategy(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		wantRes, err := ct.Run(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		want := wantRes.Rows
		cur, err := ct.OpenCursor(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got := collect(t, cur)
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: cursor rows = %d, Run rows = %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v row %d:\ncursor: %s\nrun:    %s", s, i, got[i], want[i])
			}
		}
	}
}

// TestCursorMatchesRunOuterPath covers the Example 2 combined optimisation
// through the cursor.
func TestCursorMatchesRunOuterPath(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithOuterPath("table", "tr"))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Rows
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cursor %v != run %v", got, want)
	}
}

// TestChainedCursorMatchesRun streams a two-stage pipeline.
func TestChainedCursorMatchesRun(t *testing.T) {
	d := newDeptDB(t)
	stage1 := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<report><xsl:for-each select="employees/emp"><row><xsl:value-of select="sal"/></row></xsl:for-each></report>
		</xsl:template>
	</xsl:stylesheet>`
	stage2 := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="report"><rich n="{count(row[. > 2000])}"/></xsl:template>
	</xsl:stylesheet>`
	ct, err := d.CompileTransform("dept_emp", stage1)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ct.Then(stage2)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := chain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Rows
	cur, err := chain.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("chained cursor %v != run %v", got, want)
	}
}

// TestCursorEarlyClose: Close before exhaustion abandons the stream; Next
// afterwards reports ErrCursorClosed and Close stays idempotent.
func TestCursorEarlyClose(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); !errors.Is(err, ErrCursorClosed) {
		t.Fatalf("Next after Close = %v, want ErrCursorClosed", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	// The abandoned run's counters still reached the aggregate.
	if cur.Stats().RowsProduced != 1 {
		t.Fatalf("rows produced = %d", cur.Stats().RowsProduced)
	}
}

// TestCursorContextCancel: cancellation mid-iteration surfaces
// context.Canceled (sticky).
func TestCursorContextCancel(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := ct.OpenCursor(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := cur.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	if _, err := cur.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation must be sticky, got %v", err)
	}
}

// TestCursorPerRunStats: a cursor reports its own work, and the work lands
// in the database aggregate once finished.
func TestCursorPerRunStats(t *testing.T) {
	d := newDeptDB(t)
	_ = d.CreateIndex("emp", "deptno")
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Stats().IndexProbes
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	es := cur.Stats()
	if es.RowsProduced != int64(len(rows)) || es.RowsProduced == 0 {
		t.Fatalf("RowsProduced = %d, rows = %d", es.RowsProduced, len(rows))
	}
	if es.IndexProbes == 0 {
		t.Fatal("per-run stats should see the correlated index probes")
	}
	if es.RangeScans == 0 || es.FullScans == 0 {
		t.Fatalf("operator counters missing: %+v", es)
	}
	if d.Stats().IndexProbes != before+es.IndexProbes {
		t.Fatalf("aggregate = %d, want %d + %d", d.Stats().IndexProbes, before, es.IndexProbes)
	}
}

// TestRunWithStatsIsolated: two sequential runs each see only their own
// counters.
func TestRunWithStatsIsolated(t *testing.T) {
	d := newDeptDB(t)
	_ = d.CreateIndex("emp", "deptno")
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	_, first, err := runWithStats(ct)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := runWithStats(ct)
	if err != nil {
		t.Fatal(err)
	}
	if first.IndexProbes != second.IndexProbes || first.RowsProduced != second.RowsProduced {
		t.Fatalf("identical runs should report identical per-run stats: %+v vs %+v", first, second)
	}
	if first.Recompiles != 0 {
		t.Fatalf("no recompiles expected, got %d", first.Recompiles)
	}
}

// TestTypedErrors: the sentinel errors work with errors.Is through every
// public entry point.
func TestTypedErrors(t *testing.T) {
	d := NewDatabase()
	if err := d.Insert("missing", int64(1)); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.CreateIndex("missing", "a"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("CreateIndex: %v", err)
	}
	if err := d.CreateXMLView(&ViewDef{Name: "v", Table: "missing"}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("CreateXMLView missing table: %v", err)
	}
	if _, err := d.CompileTransform("zz", "<x/>"); !errors.Is(err, ErrNoView) {
		t.Fatalf("CompileTransform: %v", err)
	}
	if _, err := d.MaterializeView("zz"); !errors.Is(err, ErrNoView) {
		t.Fatalf("MaterializeView: %v", err)
	}
	if _, err := d.DeriveSchema("zz"); !errors.Is(err, ErrNoView) {
		t.Fatalf("DeriveSchema: %v", err)
	}
	if err := d.ReplaceXMLView(&ViewDef{Name: "zz", Table: "t"}); !errors.Is(err, ErrNoView) {
		t.Fatalf("ReplaceXMLView: %v", err)
	}

	if err := d.CreateTable("t", TableColumn{Name: "v", Type: StringCol}); err != nil {
		t.Fatal(err)
	}
	view := &ViewDef{Name: "mixed", Table: "t", Body: &XMLElement{Name: "p", Children: []XMLExpr{
		&XMLLiteral{Text: "hello "},
		&XMLElement{Name: "b", Children: []XMLExpr{&XMLColumn{Name: "v"}}},
	}}}
	if err := d.CreateXMLView(view); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateXMLView(view); !errors.Is(err, ErrDuplicateView) {
		t.Fatalf("duplicate view: %v", err)
	}
	// Mixed content cannot reach SQL; forcing it must report the fallback.
	_, err := d.CompileTransform("mixed", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="p"><out/></xsl:template>
	</xsl:stylesheet>`, WithForcedStrategy(StrategySQL))
	if !errors.Is(err, ErrRewriteFellBack) {
		t.Fatalf("forced SQL on mixed view: %v", err)
	}
}

// TestPlanTagOption: WithPlanTag namespaces the plan-cache entry — identical
// compilations share a plan, tagged ones get their own — without changing
// the produced output.
func TestPlanTagOption(t *testing.T) {
	d := newDeptDB(t)
	base, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet,
		WithForcedStrategy(StrategyXQuery), WithOuterPath("table", "tr"), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	entriesBefore := len(d.PlanCacheEntries())
	same, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet,
		WithForcedStrategy(StrategyXQuery), WithOuterPath("table", "tr"), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.PlanCacheEntries()); n != entriesBefore {
		t.Fatalf("identical compile added a cache entry: %d -> %d", entriesBefore, n)
	}
	tagged, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet,
		WithForcedStrategy(StrategyXQuery), WithOuterPath("table", "tr"), WithParallelism(2),
		WithPlanTag("tenant-a"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.PlanCacheEntries()); n != entriesBefore+1 {
		t.Fatalf("tagged compile must get its own cache entry: %d -> %d", entriesBefore, n)
	}
	if base.Strategy() != tagged.Strategy() {
		t.Fatalf("strategies differ: %v vs %v", base.Strategy(), tagged.Strategy())
	}
	a, err := same.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tagged.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
		t.Fatalf("outputs differ: %v vs %v", a.Rows, b.Rows)
	}
}

// TestPlanCacheHit: recompiling the same (view, version, stylesheet,
// options) is served from the cache, observable via the counters; a view
// redefinition misses.
func TestPlanCacheHit(t *testing.T) {
	d := newDeptDB(t)
	if _, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet); err != nil {
		t.Fatal(err)
	}
	if s := d.PlanCacheStats(); s.CacheMisses != 1 || s.CacheHits != 0 {
		t.Fatalf("after first compile: %+v", s)
	}
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.PlanCacheStats(); s.CacheHits != 1 {
		t.Fatalf("second compile should hit: %+v", s)
	}
	// Different plan options → different entry.
	if _, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithOuterPath("table", "tr")); err != nil {
		t.Fatal(err)
	}
	if s := d.PlanCacheStats(); s.CacheMisses != 2 {
		t.Fatalf("outer-path compile should miss: %+v", s)
	}
	// Parallelism does not affect the plan → still a hit.
	if _, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if s := d.PlanCacheStats(); s.CacheHits != 2 {
		t.Fatalf("parallelism-only compile should hit: %+v", s)
	}

	// Redefining the view invalidates: next compile is a miss, and the
	// existing transform recompiles against the new version exactly once.
	if err := d.ReplaceXMLView(sqlxmlDeptEmpViewCopy()); err != nil {
		t.Fatal(err)
	}
	missesBefore := d.PlanCacheStats().CacheMisses
	if _, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ct.Recompiles() != 1 {
		t.Fatalf("recompiles = %d", ct.Recompiles())
	}
	if s := d.PlanCacheStats(); s.CacheMisses != missesBefore+1 {
		t.Fatalf("post-replace run should compile fresh: %+v", s)
	}
	// A second transform of the same shape now hits the recompiled entry.
	if _, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet); err != nil {
		t.Fatal(err)
	}
	if s := d.PlanCacheStats(); s.CacheMisses != missesBefore+1 {
		t.Fatalf("same-shape compile after recompile should hit: %+v", s)
	}
}

// TestPlanCacheSingleflight: concurrent first compilations of one key
// produce exactly one actual compile.
func TestPlanCacheSingleflight(t *testing.T) {
	d := newDeptDB(t)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := d.PlanCacheStats()
	if s.CacheMisses != 1 {
		t.Fatalf("singleflight should compile once, got %d misses", s.CacheMisses)
	}
	if s.CacheHits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", s.CacheHits, goroutines-1)
	}
}

// TestPlanCacheErrorNotCached: a failed compilation is retried, not served
// from the cache.
func TestPlanCacheErrorNotCached(t *testing.T) {
	d := newDeptDB(t)
	if _, err := d.CompileTransform("dept_emp", "not xml"); err == nil {
		t.Fatal("bad stylesheet should fail")
	}
	if _, err := d.CompileTransform("dept_emp", "not xml"); err == nil {
		t.Fatal("bad stylesheet should fail again")
	}
	if s := d.PlanCacheStats(); s.CacheMisses != 2 || s.Entries != 0 {
		t.Fatalf("errors must not be cached: %+v", s)
	}
}

// sqlxmlDeptEmpViewCopy returns a fresh equivalent of the dept_emp view so
// ReplaceXMLView bumps the version without changing semantics.
func sqlxmlDeptEmpViewCopy() *ViewDef {
	return sqlxml.DeptEmpView()
}

// TestConcurrentRunAndReplace is the -race regression for the old
// `*ct = *fresh` unsynchronized recompilation: many goroutines Run one
// shared transform while the view is redefined underneath them.
func TestConcurrentRunAndReplace(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := ct.Run(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.ReplaceXMLView(sqlxmlDeptEmpViewCopy()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Replaces no longer block behind in-flight runs (readers pin MVCC
	// snapshots), so the concurrent phase above may schedule every run
	// before the first version bump. All four replaces have completed by
	// now, so one more run deterministically observes the final version
	// and must recompile if none of the concurrent runs did.
	if _, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ct.Recompiles() == 0 {
		t.Fatal("at least one automatic recompilation expected")
	}
}

// TestConcurrentParallelExecAndStats is the -race regression for the shared
// Executor.Stats counter: parallel SQL execution from several goroutines
// while another goroutine reads the aggregate.
func TestConcurrentParallelExecAndStats(t *testing.T) {
	d := newDeptDB(t)
	_ = d.CreateIndex("emp", "deptno")
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = d.Stats().IndexProbes // concurrent aggregate reads
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, es, err := runWithStats(ct); err != nil {
					errs <- err
					return
				} else if es.RowsProduced == 0 {
					errs <- errors.New("no rows")
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
