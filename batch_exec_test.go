package xsltdb

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/relstore"
)

// batchABRows is sized above relstore.MorselMinRows so that worker counts
// above 1 actually engage the morsel-parallel scan path.
const batchABRows = relstore.MorselMinRows + 1000

// runRows runs ct and fails the test on error.
func runRows(t *testing.T, ct *CompiledTransform, opts ...RunOption) *Result {
	t.Helper()
	res, err := ct.Run(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameRows compares two runs row by row — the byte-identity contract.
func assertSameRows(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: row %d differs:\n got  %q\n want %q", label, i, got[i], want[i])
		}
	}
}

// TestBatchByteIdentityAcrossKnobs is the A/B suite for the execution knobs
// that must never change output bytes: batch size (including 1, the
// row-at-a-time proxy), worker count (morsels off/on), and pushdown. The
// baseline is the fully serial row-at-a-time configuration.
func TestBatchByteIdentityAcrossKnobs(t *testing.T) {
	d := newKeyedDB(t, batchABRows)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategySQL {
		t.Fatalf("strategy = %v (%s)", ct.Strategy(), ct.FallbackReason())
	}
	baseline := runRows(t, ct, WithWorkers(1), WithBatchSize(1))
	if len(baseline.Rows) != batchABRows {
		t.Fatalf("baseline produced %d rows", len(baseline.Rows))
	}

	cases := []struct {
		label string
		opts  []RunOption
	}{
		{"default", nil},
		{"batch-257", []RunOption{WithBatchSize(257)}},
		{"batch-4096", []RunOption{WithBatchSize(4096)}},
		{"serial", []RunOption{WithWorkers(1)}},
		{"morsels-2", []RunOption{WithWorkers(2)}},
		{"morsels-4", []RunOption{WithWorkers(4)}},
		{"morsels-4-small-batches", []RunOption{WithWorkers(4), WithBatchSize(64)}},
		{"no-pushdown", []RunOption{WithoutPushdown()}},
		{"no-pushdown-morsels", []RunOption{WithoutPushdown(), WithWorkers(4)}},
	}
	for _, tc := range cases {
		res := runRows(t, ct, tc.opts...)
		assertSameRows(t, tc.label, baseline.Rows, res.Rows)
	}

	// The multi-worker run must actually have taken the morsel path, and
	// the batch counters must be live.
	morsel := runRows(t, ct, WithWorkers(4))
	if morsel.Stats.MorselsExecuted == 0 {
		t.Fatalf("workers=4 run executed no morsels: %+v", morsel.Stats)
	}
	if morsel.Stats.Batches == 0 || baseline.Stats.Batches == 0 {
		t.Fatal("Batches counter not populated")
	}
	if baseline.Stats.MorselsExecuted != 0 {
		t.Fatalf("serial baseline reported morsels: %+v", baseline.Stats)
	}
}

// TestBatchByteIdentityAcrossStrategies: all three execution strategies,
// with and without pushdown and with morsels on and off, must keep
// producing byte-identical rows now that every driving scan is batched.
func TestBatchByteIdentityAcrossStrategies(t *testing.T) {
	d := newKeyedDB(t, batchABRows)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	where := WithWhere("@id < 40")
	baseline := runRows(t, ct, where, WithWorkers(1), WithBatchSize(1))
	if len(baseline.Rows) != 40 {
		t.Fatalf("baseline rows = %d", len(baseline.Rows))
	}
	for _, strat := range []Strategy{StrategySQL, StrategyXQuery, StrategyNoRewrite} {
		forced, err := d.CompileTransform("rows", keyedSheet, WithForcedStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			label string
			opts  []RunOption
		}{
			{"pushdown", []RunOption{where}},
			{"no-pushdown", []RunOption{where, WithoutPushdown()}},
			{"no-pushdown-morsels", []RunOption{where, WithoutPushdown(), WithWorkers(4)}},
		} {
			res := runRows(t, forced, tc.opts...)
			assertSameRows(t, strat.String()+"/"+tc.label, baseline.Rows, res.Rows)
		}
	}
}

// TestBatchRunOptionValidation: negative knobs surface ErrBadRunOption
// before any execution.
func TestBatchRunOptionValidation(t *testing.T) {
	d := newKeyedDB(t, 3)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Run(context.Background(), WithWorkers(-1)); !errors.Is(err, ErrBadRunOption) {
		t.Fatalf("WithWorkers(-1): %v", err)
	}
	if _, err := ct.Run(context.Background(), WithBatchSize(-5)); !errors.Is(err, ErrBadRunOption) {
		t.Fatalf("WithBatchSize(-5): %v", err)
	}
}

// TestMorselRunCancelPrompt: the <100ms cancellation promptness contract
// with the morsel-parallel scan explicitly engaged — workers must stop
// pulling morsels and the merger must unwind promptly.
func TestMorselRunCancelPrompt(t *testing.T) {
	// A small batch size over a large table keeps the merger pulling
	// batches long enough that the cancel below always lands mid-run.
	d := newKeyedDB(t, relstore.MorselMinRows*8)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.EnableAfter("relstore.scan.batch", math.MaxInt32, nil)
	defer faultpoint.Reset()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ct.Run(ctx, WithWorkers(4), WithBatchSize(64))
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for faultpoint.Hits("relstore.scan.batch") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("run never started scanning")
		}
		runtime.Gosched()
	}
	start := time.Now()
	cancel()
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("morsel run did not return after cancel")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms", elapsed)
	}
}

// TestBatchFaultNoTruncationMorsels: a fault at the batch fetch site fails
// a morsel-parallel run outright — the order-preserving merger must not
// hand the facade a silently truncated prefix.
func TestBatchFaultNoTruncationMorsels(t *testing.T) {
	d := newKeyedDB(t, batchABRows)
	ct, err := d.CompileTransform("rows", keyedSheet, WithForcedStrategy(StrategySQL))
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.EnableAfter("relstore.scan.batch", 2, errBoom)
	defer faultpoint.Reset()
	if _, err := ct.Run(context.Background(), WithWorkers(4)); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
}
