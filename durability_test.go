package xsltdb

// Durability tests: kill-and-replay through the public Open(WithDir(dir)) API, the
// fault-injection matrix at the WAL's append/fsync/rotate sites, and the
// Close lifecycle (idempotency, ErrDatabaseClosed on in-flight cursors).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/faultpoint"
)

// newDurableKeyedDB is newKeyedDB over a WAL directory: row(id, name) with n
// rows, an index on id, and the keyed view — every statement logged.
func newDurableKeyedDB(tb testing.TB, dir string, n int, opts ...OpenOption) *Database {
	tb.Helper()
	d, err := Open(append([]OpenOption{WithDir(dir)}, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	if err := d.CreateTable("row",
		TableColumn{Name: "id", Type: IntCol},
		TableColumn{Name: "name", Type: StringCol}); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := d.Insert("row", int64(i), fmt.Sprintf("name-%d", i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := d.CreateIndex("row", "id"); err != nil {
		tb.Fatal(err)
	}
	if err := d.CreateXMLView(keyedViewDef()); err != nil {
		tb.Fatal(err)
	}
	return d
}

// runKeyed compiles and runs the keyed stylesheet, returning the rows.
func runKeyed(tb testing.TB, d *Database, opts ...RunOption) []string {
	tb.Helper()
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := ct.Run(context.Background(), opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return res.Rows
}

func TestOpenReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	const n = 25
	d := newDurableKeyedDB(t, dir, n)
	want := runKeyed(t, d)
	if len(want) != n {
		t.Fatalf("rows = %d, want %d", len(want), n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// 1 create-table + n inserts + 1 create-index + 1 create-view.
	rs := d2.RecoveryStats()
	if rs.Records != n+3 {
		t.Fatalf("replayed %d records, want %d", rs.Records, n+3)
	}
	if rs.TornBytes != 0 || rs.SegmentsDropped != 0 {
		t.Fatalf("clean close reported torn bytes %d, dropped segments %d", rs.TornBytes, rs.SegmentsDropped)
	}
	got := runKeyed(t, d2)
	if len(got) != len(want) {
		t.Fatalf("recovered rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered row %d differs:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
	// The recovered index must actually work: a keyed lookup probes it.
	one := runKeyed(t, d2, WithWhere("@id = 7"))
	if len(one) != 1 || one[0] != "<hit>name-7</hit>" {
		t.Fatalf("index lookup after recovery = %v", one)
	}
	// And the recovered database must accept further durable writes.
	if err := d2.Insert("row", int64(n), fmt.Sprintf("name-%d", n)); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

// TestKillAndReplay simulates a crash: the database is abandoned WITHOUT
// Close. Under SyncAlways every acknowledged statement is already on stable
// storage, so reopening the directory must recover all of them.
func TestKillAndReplay(t *testing.T) {
	dir := t.TempDir()
	const n = 10
	d := newDurableKeyedDB(t, dir, n, WithSyncPolicy(SyncAlways))
	want := runKeyed(t, d)
	// No Close — the process "dies" here with the log as sole survivor.

	d2, err := Open(WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := runKeyed(t, d2)
	if len(got) != len(want) {
		t.Fatalf("after kill: recovered %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after kill: row %d differs", i)
		}
	}
}

func TestViewDDLSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d := newDurableKeyedDB(t, dir, 3)
	// Replace the view with a richer shape, then reopen: replay must land on
	// the replaced definition (create + replace both logged, in order).
	if err := d.ReplaceXMLView(&ViewDef{
		Name:  "rows",
		Table: "row",
		Body: &XMLElement{
			Name:  "row",
			Attrs: []XMLAttr{{Name: "id", Value: &XMLColumn{Name: "id"}}},
			Children: []XMLExpr{
				&XMLElement{Name: "name", Children: []XMLExpr{
					&XMLLiteral{Text: "employee "},
					&XMLColumn{Name: "name"},
				}},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Materialize the view directly: unlike a compiled transform (whose
	// rewrite may resolve through the schema), materialization renders the
	// exact view body, so it distinguishes the two definitions byte-for-byte.
	materialize := func(d *Database) []string {
		docs, err := d.MaterializeView("rows")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(docs))
		for i, doc := range docs {
			out[i] = serialize(doc)
		}
		return out
	}
	want := materialize(d)
	if !strings.Contains(want[0], "employee name-0") {
		t.Fatalf("replaced view not in effect before reopen: %s", want[0])
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := materialize(d2)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replaced view lost in replay, row %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestTornWriteRecovery drives the wal.append faultpoint through the facade:
// the faulted Insert fails, is NOT applied to memory, and after reopening
// the database serves exactly the committed prefix.
func TestTornWriteRecovery(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	const n = 8
	d := newDurableKeyedDB(t, dir, n)

	boom := errors.New("injected torn write")
	faultpoint.Enable("wal.append", boom)
	err := d.Insert("row", int64(n), "torn")
	faultpoint.Disable("wal.append")
	if !errors.Is(err, boom) {
		t.Fatalf("faulted Insert: %v, want injected error", err)
	}
	// Write-ahead ordering: the failed insert never reached memory.
	if got := runKeyed(t, d); len(got) != n {
		t.Fatalf("failed insert visible in memory: %d rows, want %d", len(got), n)
	}
	// The wedged log refuses further durable writes until reopened.
	if err := d.Insert("row", int64(n+1), "after"); err == nil {
		t.Fatal("insert on wedged log should fail")
	}
	d.Close()

	d2, err := Open(WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rs := d2.RecoveryStats()
	if rs.TornBytes == 0 {
		t.Fatal("torn write left no torn bytes for recovery to truncate")
	}
	got := runKeyed(t, d2)
	if len(got) != n {
		t.Fatalf("recovered %d rows, want the %d committed", len(got), n)
	}
	for i := range got {
		if got[i] != fmt.Sprintf("<hit>name-%d</hit>", i) {
			t.Fatalf("recovered row %d corrupted: %s", i, got[i])
		}
	}
	// Recovery healed the log: durable writes work again.
	if err := d2.Insert("row", int64(n), fmt.Sprintf("name-%d", n)); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

// TestFsyncFaultRollsBack: a failed fsync rolls the append back, so memory
// and log agree the statement never happened — no reopen required.
func TestFsyncFaultRollsBack(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	const n = 5
	d := newDurableKeyedDB(t, dir, n, WithSyncPolicy(SyncAlways))

	boom := errors.New("injected fsync error")
	faultpoint.Enable("wal.fsync", boom)
	err := d.Insert("row", int64(n), "lost")
	faultpoint.Disable("wal.fsync")
	if !errors.Is(err, boom) {
		t.Fatalf("faulted Insert: %v, want injected error", err)
	}
	if got := runKeyed(t, d); len(got) != n {
		t.Fatalf("failed insert visible: %d rows, want %d", len(got), n)
	}
	// Rollback (not wedging): the very next insert succeeds.
	if err := d.Insert("row", int64(n), fmt.Sprintf("name-%d", n)); err != nil {
		t.Fatalf("insert after fsync failure: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := runKeyed(t, d2)
	if len(got) != n+1 {
		t.Fatalf("recovered %d rows, want %d", len(got), n+1)
	}
	if got[n] != fmt.Sprintf("<hit>name-%d</hit>", n) {
		t.Fatalf("post-failure insert lost: %s", got[n])
	}
}

// TestRotateFaultFailsStatement: a failed segment rotation fails the
// statement cleanly; the next one rotates and proceeds.
func TestRotateFaultFailsStatement(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	// 256-byte segments: the insert volume forces rotations.
	d := newDurableKeyedDB(t, dir, 20, WithSegmentBytes(256))

	boom := errors.New("injected rotate error")
	faultpoint.Enable("wal.rotate", boom)
	var faulted bool
	for i := 20; i < 40; i++ {
		if err := d.Insert("row", int64(i), fmt.Sprintf("name-%d", i)); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("insert %d: %v, want injected rotate error", i, err)
			}
			faulted = true
			break
		}
	}
	faultpoint.Disable("wal.rotate")
	if !faulted {
		t.Fatal("no rotation happened within 20 inserts into 256-byte segments")
	}
	// The failed statement is retryable.
	if err := d.Insert("row", int64(100), "retried"); err != nil {
		t.Fatalf("insert after rotate failure: %v", err)
	}
	want := runKeyed(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := runKeyed(t, d2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs after rotate-fault recovery", i)
		}
	}
}

// TestCloseIdempotentAndFailsCursors is the Close lifecycle contract:
// double Close is a no-op, in-flight cursors fail with ErrDatabaseClosed
// (no panic), and every entry point refuses new work with the sentinel.
func TestCloseIdempotentAndFailsCursors(t *testing.T) {
	d := newKeyedDB(t, 50)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := cur.Next(); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("in-flight cursor Next after Close: %v, want ErrDatabaseClosed", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor Close after database Close: %v", err)
	}

	if _, err := ct.Run(context.Background()); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("Run after Close: %v, want ErrDatabaseClosed", err)
	}
	if _, err := ct.OpenCursor(context.Background()); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("OpenCursor after Close: %v, want ErrDatabaseClosed", err)
	}
	if err := d.Insert("row", int64(999), "x"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("Insert after Close: %v, want ErrDatabaseClosed", err)
	}
	if err := d.CreateTable("t2", TableColumn{Name: "a", Type: IntCol}); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("CreateTable after Close: %v, want ErrDatabaseClosed", err)
	}
	if err := d.CreateIndex("row", "name"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("CreateIndex after Close: %v, want ErrDatabaseClosed", err)
	}
	if err := d.CreateXMLView(&ViewDef{Name: "v2", Table: "row"}); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("CreateXMLView after Close: %v, want ErrDatabaseClosed", err)
	}
	if err := d.ReplaceXMLView(keyedViewDef()); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("ReplaceXMLView after Close: %v, want ErrDatabaseClosed", err)
	}
}

// TestCloseDurable: Close on a durable database syncs and releases the WAL;
// a cursor left open keeps its pinned snapshot readable until it observes
// the sentinel, and reopening the directory works.
func TestCloseDurable(t *testing.T) {
	dir := t.TempDir()
	d := newDurableKeyedDB(t, dir, 10)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("cursor after Close: %v", err)
	}
	d2, err := Open(WithDir(dir))
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer d2.Close()
	if got := runKeyed(t, d2); len(got) != 10 {
		t.Fatalf("recovered %d rows, want 10", len(got))
	}
}

// TestConcurrentCloseAndCursors races Close against cursor traffic: every
// cursor either drains cleanly (io.EOF) or observes ErrDatabaseClosed —
// never a panic, never a torn row.
func TestConcurrentCloseAndCursors(t *testing.T) {
	d := newKeyedDB(t, 200)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for {
				cur, err := ct.OpenCursor(context.Background())
				if err != nil {
					if errors.Is(err, ErrDatabaseClosed) {
						done <- nil
						return
					}
					done <- err
					return
				}
				for {
					_, err := cur.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						cur.Close()
						if errors.Is(err, ErrDatabaseClosed) {
							done <- nil
						} else {
							done <- err
						}
						return
					}
				}
				cur.Close()
			}
		}()
	}
	d.Close()
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatalf("worker saw unexpected error: %v", err)
		}
	}
}

// TestGroupCommitPolicies: the database works identically under every fsync
// policy; only the durability guarantee differs.
func TestGroupCommitPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			d := newDurableKeyedDB(t, dir, 30, WithSyncPolicy(policy), WithSyncEvery(8))
			want := runKeyed(t, d)
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, err := Open(WithDir(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			// Close syncs whatever the policy, so a clean shutdown always
			// recovers everything.
			got := runKeyed(t, d2)
			if len(got) != len(want) {
				t.Fatalf("%s: recovered %d rows, want %d", policy, len(got), len(want))
			}
		})
	}
}
