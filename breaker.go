package xsltdb

import "sync"

// The per-plan circuit breaker protects the degradation chain from paying
// for a strategy that keeps failing: after breakerThreshold consecutive
// failures the strategy "trips" open and subsequent executions skip it,
// degrading straight to the next strategy. After breakerCooldown skipped
// executions the breaker goes half-open and lets one probe through; a
// successful probe closes it, a failed probe re-opens it for another
// cooldown.
//
// The breaker lives on the planState, which the plan cache shares across
// every CompiledTransform compiled to the same plan — so the trip state is
// genuinely per-plan, exactly like a server-side query governor's. It never
// opens for the last (weakest) strategy in a chain: something must always
// be allowed to run.
const (
	breakerThreshold = 3
	breakerCooldown  = 8
)

// breaker tracks failure state per strategy; all methods are
// concurrency-safe.
type breaker struct {
	mu    sync.Mutex
	cells [3]breakerCell // indexed by Strategy
}

type breakerCell struct {
	consecFails int
	open        bool
	skipsLeft   int
	trips       int64
}

// state renders strategy s's cell for trace attributes: "closed",
// "open" (still consuming cooldown skips), or "half-open" (the next
// attempt through is the probe).
func (b *breaker) state(s Strategy) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cells[s]
	switch {
	case !c.open:
		return "closed"
	case c.skipsLeft <= 0:
		return "half-open"
	default:
		return "open"
	}
}

// allow reports whether strategy s should be attempted now. While open it
// consumes one cooldown skip per call; once the cooldown is spent the call
// is allowed as a half-open probe.
func (b *breaker) allow(s Strategy) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := &b.cells[s]
	if !c.open {
		return true
	}
	if c.skipsLeft > 0 {
		c.skipsLeft--
		return false
	}
	return true // half-open probe
}

// success records a completed execution of s and closes its cell.
func (b *breaker) success(s Strategy) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := &b.cells[s]
	c.consecFails = 0
	c.open = false
	c.skipsLeft = 0
}

// failure records a failed execution of s; it reports whether this failure
// tripped the breaker open (a failed half-open probe re-arms the cooldown
// without counting as a new trip).
func (b *breaker) failure(s Strategy) (tripped bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := &b.cells[s]
	c.consecFails++
	if c.open {
		c.skipsLeft = breakerCooldown
		return false
	}
	if c.consecFails >= breakerThreshold {
		c.open = true
		c.skipsLeft = breakerCooldown
		c.trips++
		return true
	}
	return false
}

// BreakerState describes one strategy's circuit-breaker cell.
type BreakerState struct {
	// Open reports whether the strategy is currently skipped.
	Open bool
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int
	// Trips counts closed→open transitions over the plan's lifetime.
	Trips int64
}

// BreakerStats is a point-in-time snapshot of a plan's circuit breaker,
// one cell per execution strategy.
type BreakerStats struct {
	SQL       BreakerState
	XQuery    BreakerState
	NoRewrite BreakerState
}

func (b *breaker) snapshot() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cell := func(s Strategy) BreakerState {
		c := b.cells[s]
		return BreakerState{Open: c.open, ConsecutiveFailures: c.consecFails, Trips: c.trips}
	}
	return BreakerStats{SQL: cell(StrategySQL), XQuery: cell(StrategyXQuery), NoRewrite: cell(StrategyNoRewrite)}
}

// BreakerStats returns the transform's per-plan circuit-breaker snapshot.
// Transforms compiled to the same cached plan share one breaker.
func (ct *CompiledTransform) BreakerStats() BreakerStats {
	return ct.snapshot().brk.snapshot()
}
