package xsltdb

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/sqlxml"
	"repro/internal/xslt"
)

func nows(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	return strings.ReplaceAll(s, "> <", "><")
}

// newDeptDB builds the paper's dept/emp database with the dept_emp view.
func newDeptDB(t *testing.T) *Database {
	t.Helper()
	d := NewDatabase()
	if err := sqlxml.SetupDeptEmp(d.Rel()); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCompileTransformFullPipeline(t *testing.T) {
	d := newDeptDB(t)
	if err := d.CreateIndex("emp", "sal"); err != nil {
		t.Fatal(err)
	}
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategySQL {
		t.Fatalf("strategy = %v (%s)", ct.Strategy(), ct.FallbackReason())
	}
	if !ct.Inlined() {
		t.Fatal("example 1 should fully inline")
	}
	if !strings.Contains(ct.SQL(), "SAL > 2000") {
		t.Fatalf("SQL missing predicate:\n%s", ct.SQL())
	}
	if !strings.Contains(ct.ExplainPlan(), "INDEX RANGE SCAN") {
		t.Fatalf("plan missing index:\n%s", ct.ExplainPlan())
	}
	if !strings.Contains(ct.XQuery(), "$var000") {
		t.Fatal("XQuery text missing")
	}

	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(nows(rows[0]), "<td>7782</td><td>CLARK</td><td>2450</td>") {
		t.Fatalf("row 0: %s", rows[0])
	}
	if strings.Contains(rows[0], "MILLER") {
		t.Fatal("low-paid employee must be filtered")
	}
}

// TestStrategiesAgree runs the same transform through every strategy and
// checks identical output — the repository's end-to-end invariant.
func TestStrategiesAgree(t *testing.T) {
	d := newDeptDB(t)
	var outputs [3][]string
	for i, s := range []Strategy{StrategySQL, StrategyXQuery, StrategyNoRewrite} {
		ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithForcedStrategy(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if ct.Strategy() != s {
			t.Fatalf("forced %v, got %v", s, ct.Strategy())
		}
		res, err := ct.Run(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		outputs[i] = res.Rows
	}
	for i := 1; i < 3; i++ {
		if len(outputs[i]) != len(outputs[0]) {
			t.Fatalf("row counts differ")
		}
		for r := range outputs[i] {
			if nows(outputs[i][r]) != nows(outputs[0][r]) {
				t.Fatalf("strategy outputs differ at row %d:\n%s\nvs\n%s", r, outputs[i][r], outputs[0][r])
			}
		}
	}
}

// TestExample2OuterPath reproduces paper Example 2 through the public API.
func TestExample2OuterPath(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet,
		WithOuterPath("table", "tr"))
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategySQL {
		t.Fatalf("combined optimisation should reach SQL: %s", ct.FallbackReason())
	}
	if strings.Contains(ct.SQL(), "H1") {
		t.Fatal("outer path should prune the headers (Table 11)")
	}
	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if nows(rows[0]) != "<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>" {
		t.Fatalf("row 0 = %s", rows[0])
	}
	if nows(rows[1]) != "<tr><td>7954</td><td>SMITH</td><td>4900</td></tr>" {
		t.Fatalf("row 1 = %s", rows[1])
	}
}

func TestFallbackChain(t *testing.T) {
	d := newDeptDB(t)
	// contains() in a condition lowers to neither SQL nor (in this shape)
	// blocks the XQuery stage: expect StrategyXQuery with a reason.
	sheet := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<xsl:choose><xsl:when test="contains(dname, 'ACC')"><acc/></xsl:when><xsl:otherwise><other/></xsl:otherwise></xsl:choose>
		</xsl:template>
	</xsl:stylesheet>`
	ct, err := d.CompileTransform("dept_emp", sheet)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategyXQuery {
		t.Fatalf("expected XQuery fallback, got %v", ct.Strategy())
	}
	if ct.FallbackReason() == "" {
		t.Fatal("fallback reason missing")
	}
	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if nows(rows[0]) != "<acc/>" || nows(rows[1]) != "<other/>" {
		t.Fatalf("fallback output wrong: %v", rows)
	}
}

func TestDatabaseBasics(t *testing.T) {
	d := NewDatabase()
	if err := d.CreateTable("t", TableColumn{Name: "a", Type: IntCol}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("t", int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("missing", int64(1)); err == nil {
		t.Fatal("insert into missing table should fail")
	}
	if err := d.CreateIndex("missing", "a"); err == nil {
		t.Fatal("index on missing table should fail")
	}
	if err := d.CreateXMLView(&ViewDef{Name: "v", Table: "missing"}); err == nil {
		t.Fatal("view over missing table should fail")
	}
	v := &ViewDef{Name: "v", Table: "t", Body: &XMLElement{Name: "r", Children: []sqlxml.XMLExpr{&XMLColumn{Name: "a"}}}}
	if err := d.CreateXMLView(v); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateXMLView(v); err == nil {
		t.Fatal("duplicate view should fail")
	}
	if d.View("v") == nil || d.View("zz") != nil {
		t.Fatal("View lookup wrong")
	}
	docs, err := d.MaterializeView("v")
	if err != nil || len(docs) != 1 {
		t.Fatalf("materialize: %v %d", err, len(docs))
	}
	s, err := d.DeriveSchema("v")
	if err != nil || s.Root.Name != "r" {
		t.Fatalf("schema: %v", err)
	}
	if _, err := d.CompileTransform("zz", "<x/>"); err == nil {
		t.Fatal("compile against missing view should fail")
	}
	if _, err := d.CompileTransform("v", "not xml"); err == nil {
		t.Fatal("bad stylesheet should fail")
	}
}

func TestStandaloneTransform(t *testing.T) {
	out, err := Transform(xslt.PaperDeptRow1, xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CLARK") {
		t.Fatal("transform output wrong")
	}
	if _, err := Transform("<bad", xslt.PaperStylesheet); err == nil {
		t.Fatal("bad xml should error")
	}
	if _, err := Transform("<a/>", "<bad"); err == nil {
		t.Fatal("bad stylesheet should error")
	}
}

func TestRewriteToXQuery(t *testing.T) {
	schema := `
dept      := dname, loc, employees
employees := emp*
emp       := empno:int, ename, sal:int
`
	q, inlined, err := RewriteToXQuery(xslt.PaperStylesheet, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !inlined {
		t.Fatal("should inline")
	}
	if !strings.Contains(q, "emp[sal > 2000]") {
		t.Fatalf("query missing predicate:\n%s", q)
	}
}

func TestStatsExposed(t *testing.T) {
	d := newDeptDB(t)
	_ = d.CreateIndex("emp", "deptno")
	ct, _ := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	before := d.Stats().IndexProbes
	if _, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d.Stats().IndexProbes == before {
		t.Fatal("stats should advance")
	}
}

// TestSchemaEvolutionRecompile exercises §7.3: the view evolves (a new
// element appears in the published XML); the compiled transform recompiles
// automatically and picks up the new structure.
func TestSchemaEvolutionRecompile(t *testing.T) {
	d := newDeptDB(t)
	sheetText := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept"><out><xsl:value-of select="dname"/>|<xsl:value-of select="city"/></out></xsl:template>
	</xsl:stylesheet>`
	ct, err := d.CompileTransform("dept_emp", sheetText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// The original view has no <city>; value-of yields "".
	if nows(rows[0]) != "<out>ACCOUNTING|</out>" {
		t.Fatalf("pre-evolution row = %q", rows[0])
	}

	// Evolve the view: publish the loc column as <city>.
	evolved := &ViewDef{
		Name:  "dept_emp",
		Table: "dept",
		Body: &XMLElement{Name: "dept", Children: []XMLExpr{
			&XMLElement{Name: "dname", Children: []XMLExpr{&XMLColumn{Name: "dname"}}},
			&XMLElement{Name: "city", Children: []XMLExpr{&XMLColumn{Name: "loc"}}},
		}},
	}
	if err := d.ReplaceXMLView(evolved); err != nil {
		t.Fatal(err)
	}

	// The SAME compiled transform recompiles automatically on next Run.
	res, err = ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Rows
	if nows(rows[0]) != "<out>ACCOUNTING|NEW YORK</out>" {
		t.Fatalf("post-evolution row = %q", rows[0])
	}
	if ct.Recompiles() != 1 {
		t.Fatalf("recompiles = %d", ct.Recompiles())
	}
	// Stable afterwards: no further recompilation.
	if _, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ct.Recompiles() != 1 {
		t.Fatalf("unexpected extra recompilation: %d", ct.Recompiles())
	}
	// Replacing an unknown view errors.
	if err := d.ReplaceXMLView(&ViewDef{Name: "nope", Table: "dept"}); err == nil {
		t.Fatal("replacing unknown view should fail")
	}
}

// TestKeyFunctionFallsBack: key() has no XQuery/SQL mapping; the facade
// must fall back to the functional baseline and still produce the right
// answer.
func TestKeyFunctionFallsBack(t *testing.T) {
	d := newDeptDB(t)
	sheet := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:key name="by-sal" match="emp" use="sal"/>
		<xsl:template match="dept"><n><xsl:value-of select="count(key('by-sal', '2450'))"/></n></xsl:template>
	</xsl:stylesheet>`
	ct, err := d.CompileTransform("dept_emp", sheet)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategyNoRewrite {
		t.Fatalf("key() should force the functional baseline, got %v", ct.Strategy())
	}
	if ct.FallbackReason() == "" {
		t.Fatal("fallback reason missing")
	}
	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if nows(rows[0]) != "<n>1</n>" || nows(rows[1]) != "<n>0</n>" {
		t.Fatalf("key fallback output wrong: %v", rows)
	}
}

func TestParallelStrategyAgrees(t *testing.T) {
	d := newDeptDB(t)
	serial, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := serial.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := par.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, b := ra.Rows, rb.Rows
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestMixedContentViewFallsBack: a view whose XML mixes text and element
// content cannot be rewritten; the facade silently uses the baseline.
func TestMixedContentViewFallsBack(t *testing.T) {
	d := NewDatabase()
	if err := d.CreateTable("t", TableColumn{Name: "v", Type: StringCol}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("t", "world"); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateXMLView(&ViewDef{Name: "mixed", Table: "t", Body: &XMLElement{Name: "p", Children: []XMLExpr{
		&XMLLiteral{Text: "hello "},
		&XMLElement{Name: "b", Children: []XMLExpr{&XMLColumn{Name: "v"}}},
	}}}); err != nil {
		t.Fatal(err)
	}
	ct, err := d.CompileTransform("mixed", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="p"><out><xsl:value-of select="."/></out></xsl:template>
	</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategyNoRewrite || ct.FallbackReason() == "" {
		t.Fatalf("expected no-rewrite fallback, got %v (%s)", ct.Strategy(), ct.FallbackReason())
	}
	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if nows(rows[0]) != "<out>hello world</out>" {
		t.Fatalf("fallback output = %q", rows[0])
	}
}

// TestChainedTransform runs a two-stage pipeline through the public API:
// stage 1 over the view (SQL strategy), stage 2 rewritten against the
// statically-typed output of stage 1.
func TestChainedTransform(t *testing.T) {
	d := newDeptDB(t)
	stage1 := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept">
			<report><xsl:for-each select="employees/emp"><row><xsl:value-of select="sal"/></row></xsl:for-each></report>
		</xsl:template>
	</xsl:stylesheet>`
	stage2 := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="report"><rich n="{count(row[. > 2000])}"/></xsl:template>
	</xsl:stylesheet>`
	ct, err := d.CompileTransform("dept_emp", stage1)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ct.Then(stage2)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, interpreted := chain.Stages()
	if rewritten != 1 || interpreted != 0 {
		t.Fatalf("stage 2 should be rewritten: %d/%d", rewritten, interpreted)
	}
	cres, err := chain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := cres.Rows
	if nows(rows[0]) != `<rich n="1"/>` || nows(rows[1]) != `<rich n="1"/>` {
		t.Fatalf("chain output = %v", rows)
	}

	// Reference: functional composition.
	docs, _ := d.MaterializeView("dept_emp")
	for i, doc := range docs {
		mid, err := Transform(strings.TrimPrefix(doc.String(), `<?xml version="1.0"?>`), stage1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Transform(mid, stage2)
		if err != nil {
			t.Fatal(err)
		}
		if nows(rows[i]) != nows(want) {
			t.Fatalf("row %d: chain %q != functional %q", i, rows[i], want)
		}
	}
}

// TestConcurrentCompileAndRun hammers the facade from several goroutines.
func TestConcurrentCompileAndRun(t *testing.T) {
	d := newDeptDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 5; j++ {
				if _, err := ct.Run(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
