package xsltdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/governor"
	"repro/internal/sqlxml"
	"repro/internal/xslt"
)

// newBigDeptDB is the paper database scaled up: n extra departments, each a
// driving row of the dept_emp view, so a full transform produces n+2 rows.
func newBigDeptDB(tb testing.TB, n int) *Database {
	tb.Helper()
	d := NewDatabase()
	if err := sqlxml.SetupDeptEmp(d.Rel()); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := d.Insert("dept", int64(100+i), fmt.Sprintf("DEPT-%05d", i), "NOWHERE"); err != nil {
			tb.Fatal(err)
		}
	}
	if err := d.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		tb.Fatal(err)
	}
	return d
}

// errBoom is the injected strategy failure used by the degradation tests.
var errBoom = errors.New("injected fault")

// runWithStats runs once and splits the Result into the rows+stats shape
// many of these assertions are written against; stats stay available on
// failed runs (degradation counts, breaker trips).
func runWithStats(ct *CompiledTransform) ([]string, *ExecStats, error) {
	res, err := ct.Run(context.Background())
	if res == nil {
		return nil, nil, err
	}
	if err != nil {
		return nil, &res.Stats, err
	}
	return res.Rows, &res.Stats, nil
}

// TestRunContextCancelPrompt is the headline promptness contract: a Run
// over a 10k-row view must abort within 100ms of cancellation, returning an
// error that satisfies both ErrCanceled and context.Canceled.
func TestRunContextCancelPrompt(t *testing.T) {
	d := newBigDeptDB(t, 10_000)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategySQL {
		t.Fatalf("strategy = %v (%s)", ct.Strategy(), ct.FallbackReason())
	}

	// Arm a never-firing fault point purely for its hit counter, so the
	// test knows the scan is genuinely in flight before cancelling. The
	// batch engine hits the site once per batch, not per row, so even a
	// couple of hits means scanning is under way.
	faultpoint.EnableAfter("relstore.scan.batch", math.MaxInt32, nil)
	defer faultpoint.Reset()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ct.Run(ctx)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for faultpoint.Hits("relstore.scan.batch") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("run never started scanning")
		}
		runtime.Gosched()
	}
	start := time.Now()
	cancel()
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must also wrap context.Canceled", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms", elapsed)
	}
}

// TestParallelRunCancel: the same promptness contract with the SQL strategy
// fanned out over workers — the dispatch loop and every worker must stop.
func TestParallelRunCancel(t *testing.T) {
	d := newBigDeptDB(t, 10_000)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	// Gate on the driving scan: it is the long deterministic phase of the
	// parallel path (worker construction finishes in a burst), and both the
	// scan iterator and the worker dispatch loop share the same governor.
	faultpoint.EnableAfter("relstore.scan.batch", math.MaxInt32, nil)
	defer faultpoint.Reset()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ct.Run(ctx)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for faultpoint.Hits("relstore.scan.batch") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("run never started scanning")
		}
		runtime.Gosched()
	}
	cancel()
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parallel run did not return after cancel")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestTimeoutOption: WithTimeout bounds the run's wall time and surfaces as
// ErrCanceled wrapping context.DeadlineExceeded.
func TestTimeoutOption(t *testing.T) {
	d := newBigDeptDB(t, 10_000)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithTimeout(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ct.Run(context.Background())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must also wrap context.DeadlineExceeded", err)
	}
}

// TestMaxRowsLimit: the rows budget aborts the run with a typed LimitError,
// through both Run and the cursor.
func TestMaxRowsLimit(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithMaxRows(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ct.Run(context.Background())
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("Run err = %v, want ErrLimitExceeded", err)
	}
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Kind != "rows" {
		t.Fatalf("err = %v, want *LimitError{Kind: rows}", err)
	}

	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(); err != nil {
		t.Fatalf("first row must fit the budget: %v", err)
	}
	if _, err := cur.Next(); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("second row = %v, want ErrLimitExceeded", err)
	}
}

// TestMaxOutputBytesLimit: the output budget aborts the run.
func TestMaxOutputBytesLimit(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithMaxOutputBytes(8))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ct.Run(context.Background())
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err = %v, want ErrLimitExceeded", err)
	}
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Kind != "output-bytes" {
		t.Fatalf("err = %v, want *LimitError{Kind: output-bytes}", err)
	}
}

// TestRecursionLimit: a stylesheet with unbounded template recursion must
// surface ErrRecursionLimit instead of overflowing the stack, under every
// strategy the compiler picks for it.
func TestRecursionLimit(t *testing.T) {
	const sheet = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
<xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>
</xsl:stylesheet>`
	d := newDeptDB(t)
	for _, opts := range [][]Option{
		nil,
		{WithMaxRecursionDepth(64)},
		{WithForcedStrategy(StrategyNoRewrite)},
	} {
		ct, err := d.CompileTransform("dept_emp", sheet, opts...)
		if err != nil {
			t.Fatalf("%v: %v", opts, err)
		}
		_, es, err := runWithStats(ct)
		if !errors.Is(err, ErrRecursionLimit) {
			t.Fatalf("%v: err = %v, want ErrRecursionLimit", opts, err)
		}
		// A recursion limit is a final verdict: the run must NOT have
		// degraded to a weaker strategy and tried again.
		if es.Degradations != 0 {
			t.Fatalf("%v: degradations = %d, want 0", opts, es.Degradations)
		}
	}
}

// TestDegradationOnInjectedFault is the acceptance scenario: a fault forced
// into the SQL plan's row construction degrades the run through the chain,
// still produces the correct result, and records the fall in ExecStats.
func TestDegradationOnInjectedFault(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategySQL {
		t.Fatalf("strategy = %v (%s)", ct.Strategy(), ct.FallbackReason())
	}
	wantRes, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Rows

	// Fail the SQL plan three rows into the scan — a mid-stream fault, not
	// an open-time one.
	faultpoint.EnableAfter("sqlxml.query.next", 1, errBoom)
	defer faultpoint.Reset()

	got, es, err := runWithStats(ct)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded run rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs after degradation:\n%s\n%s", i, got[i], want[i])
		}
	}
	if es.StrategyUsed != StrategyXQuery {
		t.Fatalf("StrategyUsed = %v, want StrategyXQuery", es.StrategyUsed)
	}
	if es.Degradations != 1 {
		t.Fatalf("Degradations = %d, want 1", es.Degradations)
	}
	if es.String() == "" || !strings.Contains(es.String(), "degradations=1") {
		t.Fatalf("stats line must surface the degradation: %s", es.String())
	}
}

// TestCircuitBreakerTripAndRecover drives the SQL strategy to failure until
// its per-plan breaker trips, verifies subsequent runs skip it, then heals
// the fault and watches the half-open probe close the breaker.
func TestCircuitBreakerTripAndRecover(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Rows

	faultpoint.Enable("sqlxml.query.next", errBoom)
	defer faultpoint.Reset()

	// breakerThreshold consecutive failures trip the cell; every run still
	// succeeds via degradation.
	for i := 0; i < breakerThreshold; i++ {
		got, es, err := runWithStats(ct)
		if err != nil || len(got) != len(want) {
			t.Fatalf("run %d: %v (%d rows)", i, err, len(got))
		}
		if es.Degradations != 1 {
			t.Fatalf("run %d: degradations = %d", i, es.Degradations)
		}
		if i == breakerThreshold-1 && es.BreakerTrips != 1 {
			t.Fatalf("final failure must trip the breaker, got %d trips", es.BreakerTrips)
		}
	}
	bs := ct.BreakerStats()
	if !bs.SQL.Open || bs.SQL.Trips != 1 {
		t.Fatalf("breaker state = %+v, want open with 1 trip", bs.SQL)
	}

	// While open, runs skip the SQL strategy without attempting it.
	hitsBefore := faultpoint.Hits("sqlxml.query.next")
	_, es, err := runWithStats(ct)
	if err != nil {
		t.Fatal(err)
	}
	if es.BreakerSkips != 1 || es.StrategyUsed != StrategyXQuery {
		t.Fatalf("open-breaker run: skips=%d strategy=%v", es.BreakerSkips, es.StrategyUsed)
	}
	if faultpoint.Hits("sqlxml.query.next") != hitsBefore {
		t.Fatal("open breaker must not touch the SQL plan at all")
	}

	// Heal the fault, spend the cooldown, and let the half-open probe
	// close the breaker again.
	faultpoint.Disable("sqlxml.query.next")
	for i := 0; i < breakerCooldown+1; i++ {
		if _, err := ct.Run(context.Background()); err != nil {
			t.Fatalf("cooldown run %d: %v", i, err)
		}
	}
	bs = ct.BreakerStats()
	if bs.SQL.Open {
		t.Fatalf("breaker should have closed after probe: %+v", bs.SQL)
	}
	_, es, err = runWithStats(ct)
	if err != nil {
		t.Fatal(err)
	}
	if es.StrategyUsed != StrategySQL || es.Degradations != 0 {
		t.Fatalf("recovered run: strategy=%v degradations=%d", es.StrategyUsed, es.Degradations)
	}
}

// TestPanicContainment: an engine panic is recovered at the strategy
// boundary, counted, and handled by degradation; with a forced strategy it
// surfaces as ErrInternal with the captured stack.
func TestPanicContainment(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Rows

	faultpoint.EnablePanic("sqlxml.query.next")
	defer faultpoint.Reset()

	got, es, err := runWithStats(ct)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	if es.PanicsRecovered != 1 || es.Degradations != 1 {
		t.Fatalf("panics=%d degradations=%d, want 1/1", es.PanicsRecovered, es.Degradations)
	}

	// Forced strategy: nothing to degrade to, so the contained panic is
	// the caller's error — typed, with the stack attached.
	forced, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithForcedStrategy(StrategySQL))
	if err != nil {
		t.Fatal(err)
	}
	_, err = forced.Run(context.Background())
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("forced err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) || len(ie.Stack) == 0 {
		t.Fatalf("err must carry an *InternalError with a stack, got %v", err)
	}
}

// TestCompileErrors: malformed stylesheets are typed ErrCompile with the
// parser's cause reachable underneath.
func TestCompileErrors(t *testing.T) {
	d := newDeptDB(t)
	_, err := d.CompileTransform("dept_emp", `<xsl:stylesheet`)
	if !errors.Is(err, ErrCompile) {
		t.Fatalf("err = %v, want ErrCompile", err)
	}
	if _, err := Transform("<a/>", `not a stylesheet`); !errors.Is(err, ErrCompile) {
		t.Fatalf("Transform err = %v, want ErrCompile", err)
	}
	if _, _, err := RewriteToXQuery(`<xsl:stylesheet`, `r := a`); !errors.Is(err, ErrCompile) {
		t.Fatalf("RewriteToXQuery err = %v, want ErrCompile", err)
	}
}

// TestCursorDoubleClose: Close is idempotent and Next after Close reports
// ErrCursorClosed, under the race detector.
func TestCursorDoubleClose(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cur.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if _, err := cur.Next(); !errors.Is(err, ErrCursorClosed) {
		t.Fatalf("Next after Close = %v, want ErrCursorClosed", err)
	}
	if cur.Stats().RowsProduced != 1 {
		t.Fatalf("stats after close: %d rows", cur.Stats().RowsProduced)
	}
}

// TestCursorCloseDuringNext: closing from another goroutine while Next is
// in flight must release the iterators exactly once and leave the cursor in
// a coherent terminal state — run with -race.
func TestCursorCloseDuringNext(t *testing.T) {
	for _, opts := range [][]Option{nil, {WithParallelism(4)}} {
		d := newBigDeptDB(t, 2_000)
		ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, opts...)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := ct.OpenCursor(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if _, err := cur.Next(); err != nil {
					// Three legitimate terminal states: the drain won the
					// race (EOF), Close landed between rows (closed), or it
					// landed mid-pull (canceled). Anything else is a bug.
					if !errors.Is(err, io.EOF) && !errors.Is(err, ErrCursorClosed) && !errors.Is(err, ErrCanceled) {
						t.Errorf("Next during close race = %v", err)
					}
					return
				}
			}
		}()
		// Let the drain loop get going, then yank the cursor out from
		// under it.
		time.Sleep(2 * time.Millisecond)
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		_ = cur.Stats()
	}
}

// TestCursorCancelPrompt: cancelling the cursor's context aborts an
// in-flight Next within the promptness budget.
func TestCursorCancelPrompt(t *testing.T) {
	d := newBigDeptDB(t, 10_000)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := ct.OpenCursor(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	cancel()
	for {
		_, err := cur.Next()
		if err == nil {
			continue // a row already in flight may still be delivered
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		break
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cursor cancellation took %v, want < 100ms", elapsed)
	}
}

// TestCursorBreakerInteraction: a mid-stream fault terminates the cursor
// (no silent truncation) and counts against the plan's breaker; an open
// breaker makes the next cursor open on the weaker strategy.
func TestCursorBreakerInteraction(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.EnableAfter("sqlxml.query.next", 1, errBoom)
	defer faultpoint.Reset()

	for i := 0; i < breakerThreshold; i++ {
		cur, err := ct.OpenCursor(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			t.Fatalf("cursor %d first row: %v", i, err)
		}
		if _, err := cur.Next(); !errors.Is(err, errBoom) {
			t.Fatalf("cursor %d must surface the fault, got %v", i, err)
		}
		cur.Close()
		faultpoint.EnableAfter("sqlxml.query.next", 1, errBoom) // re-arm pass budget
	}
	if bs := ct.BreakerStats(); !bs.SQL.Open {
		t.Fatalf("mid-stream cursor failures must trip the breaker: %+v", bs.SQL)
	}
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("degraded cursor produced nothing")
	}
	if es := cur.Stats(); es.StrategyUsed != StrategyXQuery || es.BreakerSkips != 1 {
		t.Fatalf("degraded cursor stats: strategy=%v skips=%d", es.StrategyUsed, es.BreakerSkips)
	}
}

// TestFaultMidScanNoTruncation guards the Err() contract end to end: a
// fault in the relstore scan must fail the run, never silently shorten it.
func TestFaultMidScanNoTruncation(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithForcedStrategy(StrategySQL))
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.EnableAfter("relstore.scan.batch", 1, errBoom)
	defer faultpoint.Reset()
	_, err = ct.Run(context.Background())
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
}

// TestGovernanceNotBreakerFailure: cancellations and limits must not count
// against the strategy's breaker — they say nothing about plan health.
func TestGovernanceNotBreakerFailure(t *testing.T) {
	d := newDeptDB(t)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet, WithMaxRows(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < breakerThreshold+1; i++ {
		if _, err := ct.Run(context.Background()); !errors.Is(err, ErrLimitExceeded) {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if bs := ct.BreakerStats(); bs.SQL.Open || bs.SQL.ConsecutiveFailures != 0 {
		t.Fatalf("limit errors leaked into the breaker: %+v", bs.SQL)
	}
}
