package xsltdb

// The retention half of the facade's observability layer: run-history
// archiving (EnableRunHistory → obs.Archive), the trace-sampling policy that
// decides which runs carry full traces into the archive, the always-on
// cardinality-accuracy tracker, and the debug console handler that serves
// all of it (cmd/xsltdb -console-addr). The per-run recording hooks live at
// the two places an execution finishes: CompiledTransform.Run (xsltdb.go)
// and Cursor.release (cursor.go), both of which call archiveRun.

import (
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/sqlxml"
)

type samplingMode uint8

const (
	samplingOff samplingMode = iota
	samplingAlways
	samplingRatio
	samplingSlow
	samplingErrors
)

// TraceSampling is a policy for which executions trace themselves into the
// run-history archive. Sampling only takes effect when the database's
// archive is enabled (EnableRunHistory); every run is still archived as a
// record — the policy decides which records carry the full operator tree,
// so WithTrace-level detail can stay on in production without paying trace
// allocation on every run. Construct with SampleAlways, SampleRatio,
// SampleSlowerThan or SampleErrors; the zero value samples nothing.
type TraceSampling struct {
	mode      samplingMode
	ratio     float64
	threshold time.Duration
}

// SampleAlways traces every execution into the archive.
func SampleAlways() TraceSampling { return TraceSampling{mode: samplingAlways} }

// SampleRatio traces a deterministic r fraction of executions (0 ≤ r ≤ 1):
// over N runs, floor(N·r)±1 carry traces, spread evenly rather than decided
// by a random draw — reproducible and immune to unlucky streaks.
func SampleRatio(r float64) TraceSampling {
	return TraceSampling{mode: samplingRatio, ratio: r}
}

// SampleSlowerThan traces executions whose wall time (compile + exec) ends
// up >= d. Every run under this policy traces itself speculatively — whether
// it was slow is only known at the end — but only the over-threshold runs
// retain their trace in the archive; the rest release their spans back to
// the pool.
func SampleSlowerThan(d time.Duration) TraceSampling {
	return TraceSampling{mode: samplingSlow, threshold: d}
}

// SampleErrors traces executions that end in an error (same speculative
// self-tracing as SampleSlowerThan).
func SampleErrors() TraceSampling { return TraceSampling{mode: samplingErrors} }

// WithTraceSampling installs a trace-sampling policy on the transform: runs
// the policy selects land in the run-history archive with their full
// operator tree, exactly as if the caller had passed WithTrace. No effect
// until EnableRunHistory is called on the database.
func WithTraceSampling(p TraceSampling) Option {
	return optionFunc(func(o *compileOptions) { o.Sampling = p })
}

// wantTrace decides at run start whether this execution should carry a
// trace for the archive. hist is the database's archive (nil = disabled →
// never sample). The slow-only and errors-only policies must trace
// speculatively: whether the run qualifies is only known when it finishes.
func (p TraceSampling) wantTrace(hist *obs.Archive) bool {
	if hist == nil {
		return false
	}
	switch p.mode {
	case samplingAlways, samplingSlow, samplingErrors:
		return true
	case samplingRatio:
		return sampleHit(hist.SampleTick(), p.ratio)
	}
	return false
}

// keep decides at run end whether the (speculatively) collected trace is
// retained in the archive record.
func (p TraceSampling) keep(wall time.Duration, err error) bool {
	switch p.mode {
	case samplingAlways, samplingRatio:
		return true
	case samplingSlow:
		return wall >= p.threshold
	case samplingErrors:
		return err != nil
	}
	return false
}

// WantTrace decides up front — before any work has run — whether the seq-th
// unit of work (1-based) should carry a trace under this policy. It is the
// serving layer's entry into the same policy engine the archive uses: the
// slow-only and errors-only policies return true because qualification is
// only known at the end. The zero policy returns false.
func (p TraceSampling) WantTrace(seq uint64) bool {
	switch p.mode {
	case samplingAlways, samplingSlow, samplingErrors:
		return true
	case samplingRatio:
		return sampleHit(seq, p.ratio)
	}
	return false
}

// Sample decides at completion time whether the seq-th unit of work (1-based)
// is selected by this policy, given its wall time and terminal error — the
// serving layer's wide-event sampling decision. The zero policy returns
// false; serve treats the zero value as "emit every event" before consulting
// this method.
func (p TraceSampling) Sample(seq uint64, wall time.Duration, err error) bool {
	switch p.mode {
	case samplingAlways:
		return true
	case samplingRatio:
		return sampleHit(seq, p.ratio)
	case samplingSlow:
		return wall >= p.threshold
	case samplingErrors:
		return err != nil
	}
	return false
}

// sampleHit reports whether the n-th execution (1-based) falls on a sampling
// boundary for ratio r: true exactly when floor(n·r) advances past
// floor((n-1)·r), which spaces hits evenly at every ratio.
func sampleHit(n uint64, r float64) bool {
	if r >= 1 {
		return true
	}
	if r <= 0 || n == 0 {
		return false
	}
	return uint64(float64(n)*r) > uint64(float64(n-1)*r)
}

// EnableRunHistory turns on the run-history archive: every subsequent Run
// call and cursor lifetime is recorded in a bounded ring (capacity <= 0
// keeps the default of 256 runs) with per-plan latency aggregates, and
// trace-sampling policies (WithTraceSampling) become active. Enabling is
// idempotent — the first call wins — and the archive is returned either way.
// Before this call (and on databases that never make it) the archive path
// costs one atomic pointer load per run.
func (d *Database) EnableRunHistory(capacity int) *obs.Archive {
	a := obs.NewArchive(capacity)
	if d.history.CompareAndSwap(nil, a) {
		return a
	}
	return d.history.Load()
}

// RunHistory returns the archive, or nil when EnableRunHistory was never
// called. All archive methods are nil-safe, so callers may use the result
// unconditionally.
func (d *Database) RunHistory() *obs.Archive { return d.history.Load() }

// Cardinality returns the database's cardinality-accuracy tracker: per
// access-path est-vs-actual aggregates, and the misestimate log of runs
// whose q-error crossed the threshold. Always on — its cost is one short
// critical section per completed run — and always non-nil.
func (d *Database) Cardinality() *obs.CardTracker { return d.cards }

// ConsoleHandler builds the live debug console over this database: recent
// runs (with sampled traces), plan-cache entries and per-plan aggregates,
// the cardinality misestimate log, the process metrics registry, and the
// pprof endpoints. Serve it on an internal port:
//
//	go http.ListenAndServe("localhost:6060", db.ConsoleHandler())
//
// The /runs endpoints stay empty until EnableRunHistory is called.
func (d *Database) ConsoleHandler() http.Handler {
	return d.ConsoleHandlerWithTenants(nil)
}

// ConsoleHandlerWithTenants is ConsoleHandler plus a /tenants section fed by
// the serving layer's per-tenant admission state (see the serve package);
// tenants may be nil, leaving /tenants empty.
func (d *Database) ConsoleHandlerWithTenants(tenants func() any) http.Handler {
	return d.ConsoleHandlerWith(ConsoleSections{Tenants: tenants})
}

// ConsoleSections are the serving- and diagnostics-layer feeds a console can
// attach on top of the engine's own sections. Every field may be nil,
// leaving its endpoint empty. The funcs stay `any`-typed so the facade does
// not depend on the serve package.
type ConsoleSections struct {
	// Tenants feeds /tenants: per-tenant admission state.
	Tenants func() any
	// Events feeds /events: up to n recent wide events, newest first,
	// optionally restricted to one tenant and/or one 32-hex trace ID.
	Events func(n int, tenant, trace string) any
	// Anomalies feeds /debug/anomalies: the diagnostics monitor's detectors
	// and recent anomalies.
	Anomalies func(n int) any
	// Bundles feeds GET /debug/bundle: retained diagnostic bundles.
	Bundles func() any
	// CaptureBundle serves POST /debug/bundle: capture a bundle now.
	CaptureBundle func() (string, error)
}

// ConsoleHandlerWith is ConsoleHandler plus the serving and diagnostics
// sections: /tenants, /events (with tenant/trace filters), /debug/anomalies,
// and /debug/bundle.
func (d *Database) ConsoleHandlerWith(s ConsoleSections) http.Handler {
	return obs.ConsoleHandler(obs.ConsoleConfig{
		Archive:       d.history.Load(),
		Cards:         d.cards,
		Registry:      obs.Default,
		Plans:         func() any { return d.PlanCacheEntries() },
		Tenants:       s.Tenants,
		Events:        s.Events,
		Anomalies:     s.Anomalies,
		Bundles:       s.Bundles,
		CaptureBundle: s.CaptureBundle,
	})
}

// archiveRun folds one finished execution into the retention layer: a
// RunRecord into the archive (when enabled) and — for executions that ran to
// completion — an est-vs-actual observation into the cardinality tracker.
// complete distinguishes a run whose actual row count is trustworthy (Run
// succeeded, cursor reached EOF) from a partial one (error, early Close):
// partial actuals say nothing about the estimate and are not counted.
// keepTrace marks the record sampled and attaches the rendered trace; the
// caller still owns tr and releases it afterwards if it was self-created.
func (d *Database) archiveRun(a *obs.Archive, kind, view string, start time.Time, spec *sqlxml.RunSpec, es *ExecStats, err error, tr *obs.Trace, keepTrace bool, complete bool) {
	var id uint64
	if a != nil {
		rec := obs.RunRecord{
			Kind: kind, Start: start, View: view,
			Strategy:    es.StrategyUsed.String(),
			AccessPath:  es.AccessPath,
			Rows:        es.RowsProduced,
			Wall:        es.CompileWall + es.ExecWall,
			CompileWall: es.CompileWall,
			ExecWall:    es.ExecWall,
			Stats:       es.String(),
		}
		if err != nil {
			rec.Error = err.Error()
		}
		// A trace carrying a request identity (serve's WithTrace + SetID) is
		// archived under that ID and always retains its tree — the whole point
		// of request-scoped tracing is that /runs/<trace-id> resolves to the
		// full operator tree. Self-created traces never carry an ID.
		if tid := tr.ID(); tid != "" {
			rec.TraceID = tid
			keepTrace = true
		}
		if keepTrace && tr != nil {
			rec.Sampled = true
			rec.Trace = tr.Tree()
			if b, jerr := tr.JSON(); jerr == nil {
				rec.TraceJSON = b
			}
		}
		id = a.Record(rec)
	}
	if complete {
		d.cards.Observe(id, view, es.StrategyUsed.String(), specShape(spec), es.EstRows, es.RowsProduced)
	}
}
