package xsltdb

import "errors"

// Sentinel errors for programmatic handling with errors.Is/errors.As. All
// package errors that involve these conditions wrap the matching sentinel,
// with a message carrying the specific names involved.
var (
	// ErrNoView reports a reference to a view that is not registered.
	ErrNoView = errors.New("xsltdb: view does not exist")
	// ErrNoTable reports a reference to a table that does not exist.
	ErrNoTable = errors.New("xsltdb: table does not exist")
	// ErrDuplicateView reports CreateXMLView of a name already registered.
	ErrDuplicateView = errors.New("xsltdb: view already exists")
	// ErrRewriteFellBack reports that a forced strategy could not be
	// satisfied: the rewrite pipeline fell back before reaching it.
	ErrRewriteFellBack = errors.New("xsltdb: rewrite fell back before the forced strategy")
	// ErrCursorClosed reports Next on a closed cursor.
	ErrCursorClosed = errors.New("xsltdb: cursor is closed")
)
