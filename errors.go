package xsltdb

import (
	"errors"
	"fmt"

	"repro/internal/governor"
	"repro/internal/relstore"
)

// Sentinel errors for programmatic handling with errors.Is/errors.As. All
// package errors that involve these conditions wrap the matching sentinel,
// with a message carrying the specific names involved.
var (
	// ErrNoView reports a reference to a view that is not registered.
	ErrNoView = errors.New("xsltdb: view does not exist")
	// ErrNoTable reports a reference to a table that does not exist.
	ErrNoTable = errors.New("xsltdb: table does not exist")
	// ErrDuplicateView reports CreateXMLView of a name already registered.
	ErrDuplicateView = errors.New("xsltdb: view already exists")
	// ErrRewriteFellBack reports that a forced strategy could not be
	// satisfied: the rewrite pipeline fell back before reaching it.
	ErrRewriteFellBack = errors.New("xsltdb: rewrite fell back before the forced strategy")
	// ErrCursorClosed reports Next on a closed cursor.
	ErrCursorClosed = errors.New("xsltdb: cursor is closed")
	// ErrCompile reports a malformed stylesheet or schema: the wrapped
	// cause carries the parser's position information (xslt.CompileError,
	// xpath.SyntaxError, xquery.ParseError, ...), reachable via errors.As.
	ErrCompile = errors.New("xsltdb: stylesheet failed to compile")
	// ErrBadRunOption reports an invalid per-run option: a WithParam value
	// of an unsupported type, or a WithWhere expression that does not parse
	// or references a column the view does not expose.
	ErrBadRunOption = errors.New("xsltdb: invalid run option")
	// ErrDatabaseClosed reports an operation on a Database after Close:
	// new runs, cursors, and DML are refused, and in-flight cursors
	// terminate with an error wrapping this sentinel instead of panicking.
	ErrDatabaseClosed = errors.New("xsltdb: database is closed")
)

// ErrUnboundParam reports execution of a parameterized plan without a value
// for one of its parameters; bind it with WithParam.
var ErrUnboundParam = relstore.ErrUnboundParam

// Execution-governance sentinels, shared with the internal evaluation
// layers so errors.Is matches no matter which layer stopped the run.
var (
	// ErrCanceled reports the run's context was cancelled or its deadline
	// (WithTimeout) expired. Errors carrying it also wrap the underlying
	// context error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working.
	ErrCanceled = governor.ErrCanceled
	// ErrLimitExceeded reports a configured resource budget (WithMaxRows,
	// WithMaxOutputBytes) was exhausted; errors.As against
	// *governor.LimitError yields which one.
	ErrLimitExceeded = governor.ErrLimitExceeded
	// ErrRecursionLimit reports template or function recursion deeper than
	// the bound (WithMaxRecursionDepth, default 1024/2048) — a runaway
	// xsl:apply-templates, surfaced as an error instead of a stack
	// overflow.
	ErrRecursionLimit = governor.ErrRecursionLimit
)

// ErrInternal reports a recovered panic: a bug in the engine (or injected
// fault) that was contained at the facade boundary instead of crashing the
// process. The wrapped *InternalError carries the captured stack.
var ErrInternal = errors.New("xsltdb: internal error")

// InternalError is a panic recovered at the facade boundary; it wraps
// ErrInternal.
type InternalError struct {
	// Panic is the recovered value.
	Panic any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("xsltdb: internal error: recovered panic: %v", e.Panic)
}

func (e *InternalError) Unwrap() error { return ErrInternal }
