package xsltdb

// The benchmark harness regenerates the paper's evaluation (§5):
//
//   - BenchmarkFigure2_*: the 'dbonerow' XSLTMark case — XSLT rewrite vs
//     no-rewrite across document sizes. The paper's 8M/16M/32M/64M stored
//     documents map to scale factors over the generated sales data; the
//     claim under test is the SHAPE: no-rewrite grows linearly with the
//     document, rewrite stays nearly flat thanks to the B-tree probe.
//   - BenchmarkFigure3_*: 'avts', 'chart', 'metric', 'total' — no value
//     index applies, yet the rewrite avoids materializing and walking the
//     DOM entirely.
//   - BenchmarkAblation*: the design choices DESIGN.md calls out.
//
// Run: go test -bench=. -benchmem  (cmd/xsltbench prints figure tables).

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"testing"

	"strings"

	"repro/internal/clobstore"
	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xmltree"
	"repro/internal/xq2sql"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xsltmark"
	"repro/internal/xsltvm"
	"repro/internal/xtest"
)

// benchEnv packages a case loaded at a scale factor.
type benchEnv struct {
	db    *relstore.DB
	exec  *sqlxml.Executor
	view  *sqlxml.ViewDef
	sheet *xslt.Stylesheet
	// plan is the lowered SQL/XML query (rewrite path).
	plan *sqlxml.Query
	// rows is the materialized XMLType input (no-rewrite path input).
	rows []*xmltree.Node
	// module is the intermediate XQuery.
	module *xquery.Module
}

// loadCase builds everything both paths need, with the case's indexes.
func loadCase(tb testing.TB, name string, n int) *benchEnv {
	tb.Helper()
	c := xsltmark.ByName(name)
	if c == nil || c.Rel == nil {
		tb.Fatalf("case %q not database-backed", name)
	}
	db := relstore.NewDB()
	if err := c.Rel.Setup(db, n); err != nil {
		tb.Fatal(err)
	}
	for table, cols := range c.Rel.IndexCols {
		for _, col := range cols {
			if err := db.Table(table).CreateIndex(col); err != nil {
				tb.Fatal(err)
			}
		}
	}
	exec := sqlxml.NewExecutor(db)
	view := c.Rel.View()
	schema, err := exec.DeriveSchema(view)
	if err != nil {
		tb.Fatal(err)
	}
	sheet := xtest.Sheet(tb, c.Stylesheet)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		tb.Fatalf("%s does not lower: %v", name, err)
	}
	rows, err := exec.MaterializeView(view)
	if err != nil {
		tb.Fatal(err)
	}
	return &benchEnv{db: db, exec: exec, view: view, sheet: sheet, plan: plan, rows: rows, module: res.Module}
}

// runRewrite executes the SQL/XML plan (the paper's "rewrite" series).
func (e *benchEnv) runRewrite(tb testing.TB) {
	docs, err := e.exec.ExecQuery(e.plan)
	if err != nil {
		tb.Fatal(err)
	}
	if len(docs) == 0 {
		tb.Fatal("no output")
	}
}

// runNoRewrite materializes the XMLType value and interprets the stylesheet
// over the DOM (the paper's "no-rewrite" series). Materialization cost is
// included, exactly as in the paper's functional XMLTransform() evaluation.
func (e *benchEnv) runNoRewrite(tb testing.TB) {
	rows, err := e.exec.MaterializeView(e.view)
	if err != nil {
		tb.Fatal(err)
	}
	eng := xslt.New(e.sheet)
	for _, row := range rows {
		if _, err := eng.Transform(row); err != nil {
			tb.Fatal(err)
		}
	}
}

// Figure2Sizes are the scale factors standing in for the paper's
// 8M/16M/32M/64M stored documents (rows of generated sales data).
var Figure2Sizes = []int{2000, 4000, 8000, 16000}

func BenchmarkFigure2(b *testing.B) {
	for _, n := range Figure2Sizes {
		env := loadCase(b, "dbonerow", n)
		b.Run(fmt.Sprintf("rows=%d/rewrite", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.runRewrite(b)
			}
		})
		b.Run(fmt.Sprintf("rows=%d/no-rewrite", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.runNoRewrite(b)
			}
		})
	}
}

// Figure3Cases are the four non-predicate cases of the paper's Figure 3.
var Figure3Cases = []string{"avts", "chart", "metric", "total"}

func BenchmarkFigure3(b *testing.B) {
	const n = 4000
	for _, name := range Figure3Cases {
		env := loadCase(b, name, n)
		b.Run(name+"/rewrite", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.runRewrite(b)
			}
		})
		b.Run(name+"/no-rewrite", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.runNoRewrite(b)
			}
		})
	}
}

// BenchmarkAblationTranslationModes compares the three XSLT→XQuery
// generation strategies executing FUNCTIONALLY over the same document:
// straightforward ([9] baseline), non-inline, and inline. This isolates the
// §3 rewrite quality from the §2 relational lowering.
func BenchmarkAblationTranslationModes(b *testing.B) {
	const n = 1000
	doc, err := xmltree.Parse(xsltmark.GenSalesDoc(n))
	if err != nil {
		b.Fatal(err)
	}
	// A realistic wide stylesheet: the dbaccess rules surrounded by thirty
	// templates for other document types (the situation §3.1 describes:
	// the straightforward translation re-tests every pattern per node,
	// while PE-driven modes prune to the instantiated set).
	var sb strings.Builder
	sb.WriteString(`<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">`)
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, `<xsl:template match="other%d/leaf%d"><x%d/></xsl:template>`, i, i, i)
	}
	sb.WriteString(`
		<xsl:template match="table"><html><xsl:apply-templates select="row"/></html></xsl:template>
		<xsl:template match="row"><tr><td><xsl:value-of select="id"/></td><td><xsl:value-of select="name"/></td></tr></xsl:template>
	</xsl:stylesheet>`)
	sheet := xtest.Sheet(b, sb.String())
	schema := mustSchema(b, xsltmark.SalesSchema)

	for _, mode := range []core.Mode{core.ModeStraightforward, core.ModeNonInline, core.ModeInline} {
		res, err := core.Rewrite(sheet, schema, mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := xquery.EvalModule(res.Module, xquery.NewEnv(xquery.Item(doc))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndexVsScan isolates the B-tree's contribution to
// Figure 2: the same lowered dbonerow plan with and without the id index.
func BenchmarkAblationIndexVsScan(b *testing.B) {
	const n = 8000
	c := xsltmark.ByName("dbonerow")

	build := func(withIndex bool) *benchEnv {
		db := relstore.NewDB()
		if err := c.Rel.Setup(db, n); err != nil {
			b.Fatal(err)
		}
		if withIndex {
			if err := db.Table("sales").CreateIndex("id"); err != nil {
				b.Fatal(err)
			}
		}
		exec := sqlxml.NewExecutor(db)
		view := c.Rel.View()
		schema, _ := exec.DeriveSchema(view)
		res, err := core.Rewrite(xtest.Sheet(b, c.Stylesheet), schema, core.ModeAuto)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := xq2sql.Translate(res.Module, view)
		if err != nil {
			b.Fatal(err)
		}
		return &benchEnv{db: db, exec: exec, view: view, plan: plan}
	}

	withIdx := build(true)
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			withIdx.runRewrite(b)
		}
	})
	noIdx := build(false)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			noIdx.runRewrite(b)
		}
	})
}

// BenchmarkAblationStreaming compares constructing the result directly from
// columns (the lowered plan) against materializing the XML view first and
// then running the GENERATED XQUERY functionally — isolating the benefit of
// skipping materialization even with an optimal query.
func BenchmarkAblationStreaming(b *testing.B) {
	const n = 4000
	env := loadCase(b, "avts", n)
	b.Run("streaming-sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.runRewrite(b)
		}
	})
	b.Run("materialize-then-xquery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := env.exec.MaterializeView(env.view)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range rows {
				if _, err := xquery.EvalModule(env.module, xquery.NewEnv(xquery.Item(row))); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationVMvsInterpreter compares the two functional XSLT
// executors (tree-walking interpreter vs XSLTVM bytecode) on the paper's
// Example 1.
func BenchmarkAblationVMvsInterpreter(b *testing.B) {
	doc, err := xmltree.Parse(xslt.PaperDeptRow1)
	if err != nil {
		b.Fatal(err)
	}
	sheet := xtest.Sheet(b, xslt.PaperStylesheet)
	b.Run("interpreter", func(b *testing.B) {
		eng := xslt.New(sheet)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Transform(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vm", func(b *testing.B) {
		vm := newVM(b, sheet)
		for i := 0; i < b.N; i++ {
			if _, err := vm.Run(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRewriteCompilation measures CompileTransform with the plan
// cache in play: the first iteration pays the full pipeline (partial
// evaluation + generation + lowering), every further iteration is a cache
// hit — the compile-once/run-many cost the paper amortizes. Compare with
// BenchmarkPlanCache/miss for the uncached cost.
func BenchmarkRewriteCompilation(b *testing.B) {
	d := NewDatabase()
	if err := sqlxml.SetupDeptEmp(d.Rel()); err != nil {
		b.Fatal(err)
	}
	if err := d.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
		if err != nil {
			b.Fatal(err)
		}
		if ct.Strategy() != StrategySQL {
			b.Fatal("expected SQL strategy")
		}
	}
}

// newBenchDeptDB builds a dept/emp database with nDepts departments of 20
// employees each through the public API, with both indexes.
func newBenchDeptDB(b *testing.B, nDepts int) *Database {
	b.Helper()
	d := NewDatabase()
	if err := sqlxml.SetupDeptEmp(d.Rel()); err != nil {
		b.Fatal(err)
	}
	dept := d.Rel().Table("dept")
	emp := d.Rel().Table("emp")
	for dn := 1000; dn < 1000+nDepts; dn++ {
		if _, err := dept.Insert(int64(dn), fmt.Sprintf("D%d", dn), "CITY"); err != nil {
			b.Fatal(err)
		}
		for e := 0; e < 20; e++ {
			if _, err := emp.Insert(int64(dn*100+e), fmt.Sprintf("E%d", e), "STAFF",
				int64(500+(e*397)%4500), int64(dn)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := d.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		b.Fatal(err)
	}
	if err := d.CreateIndex("emp", "sal"); err != nil {
		b.Fatal(err)
	}
	if err := d.CreateIndex("emp", "deptno"); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkCursorVsRun compares materializing execution (Run) against the
// streaming cursor over the same compiled SQL plan: same work per row, but
// the cursor holds one row at a time.
func BenchmarkCursorVsRun(b *testing.B) {
	d := newBenchDeptDB(b, 200)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ct.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("cursor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur, err := ct.OpenCursor(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				if _, err := cur.Next(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
				n++
			}
			_ = cur.Close()
			if n == 0 {
				b.Fatal("no rows")
			}
		}
	})
	// First-row latency: how much work before the first result is in hand.
	b.Run("cursor-first-row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur, err := ct.OpenCursor(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cur.Next(); err != nil {
				b.Fatal(err)
			}
			_ = cur.Close()
		}
	})
}

// BenchmarkParallelRuns hammers ONE shared compiled transform from all
// procs — the per-run stats sinks mean the goroutines never contend on a
// shared counter.
func BenchmarkParallelRuns(b *testing.B) {
	d := newBenchDeptDB(b, 50)
	ct, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet)
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := ct.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCache isolates the cache's effect: "hit" recompiles the same
// (view, stylesheet) — served from the cache; "miss" compiles a distinct
// stylesheet each iteration — the full pipeline every time.
func BenchmarkPlanCache(b *testing.B) {
	const sheetTmpl = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="dept"><out v="%d"><xsl:value-of select="dname"/></out></xsl:template>
	</xsl:stylesheet>`
	b.Run("hit", func(b *testing.B) {
		d := newBenchDeptDB(b, 2)
		if _, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.CompileTransform("dept_emp", xslt.PaperStylesheet); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := d.PlanCacheStats(); s.CacheHits < int64(b.N) {
			b.Fatalf("expected hits, got %+v", s)
		}
	})
	b.Run("miss", func(b *testing.B) {
		d := newBenchDeptDB(b, 2)
		for i := 0; i < b.N; i++ {
			if _, err := d.CompileTransform("dept_emp", fmt.Sprintf(sheetTmpl, i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := d.PlanCacheStats(); s.CacheHits != 0 {
			b.Fatalf("expected no hits, got %+v", s)
		}
	})
}

// ---- small helpers ----

func mustSchema(tb testing.TB, compact string) *xschema.Schema {
	tb.Helper()
	s, err := xschema.ParseCompact(compact)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func newVM(tb testing.TB, sheet *xslt.Stylesheet) *xsltvm.VM {
	tb.Helper()
	prog, err := xsltvm.Compile(sheet)
	if err != nil {
		tb.Fatal(err)
	}
	return xsltvm.New(prog)
}

// BenchmarkAblationStorageModels is the study the paper's §7.4 proposes:
// the same XSLT workload over the three physical XMLType storage models.
// The workload is Example-1-shaped: many dept documents, transform each.
//
//   - object-relational: base tables + view; the rewrite runs as a SQL plan
//   - tree: pre-parsed DOMs, functional interpretation (no parse cost)
//   - clob: serialized text, parse-then-interpret per transformation
//   - clob+pvindex: a path/value index pre-selects the documents a
//     predicate-bearing query needs, parsing only those
func BenchmarkAblationStorageModels(b *testing.B) {
	const nDepts = 200
	const empsPer = 20

	// Object-relational backing.
	db := relstore.NewDB()
	if err := sqlxml.SetupDeptEmp(db); err != nil {
		b.Fatal(err)
	}
	dept := db.Table("dept")
	emp := db.Table("emp")
	for d := 1000; d < 1000+nDepts; d++ {
		if _, err := dept.Insert(int64(d), fmt.Sprintf("D%d", d), "CITY"); err != nil {
			b.Fatal(err)
		}
		for e := 0; e < empsPer; e++ {
			if _, err := emp.Insert(int64(d*100+e), fmt.Sprintf("E%d", e), "STAFF",
				int64(500+(e*397)%4500), int64(d)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := emp.CreateIndex("sal"); err != nil {
		b.Fatal(err)
	}
	if err := emp.CreateIndex("deptno"); err != nil {
		b.Fatal(err)
	}
	exec := sqlxml.NewExecutor(db)
	view := sqlxml.DeptEmpView()
	schema, err := exec.DeriveSchema(view)
	if err != nil {
		b.Fatal(err)
	}
	sheet := xtest.Sheet(b, xslt.PaperStylesheet)
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		b.Fatal(err)
	}

	// CLOB / tree backing: the same documents, serialized.
	store := clobstore.New()
	docs, err := exec.MaterializeView(view)
	if err != nil {
		b.Fatal(err)
	}
	for _, doc := range docs {
		if _, err := store.Add(doc.String()); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.CreatePathIndex("/dept/employees/emp/sal"); err != nil {
		b.Fatal(err)
	}

	b.Run("object-relational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.ExecQuery(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		eng := xslt.New(sheet)
		for i := 0; i < b.N; i++ {
			for id := 0; id < store.Len(); id++ {
				doc, err := store.Tree(id)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Transform(doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("clob", func(b *testing.B) {
		eng := xslt.New(sheet)
		for i := 0; i < b.N; i++ {
			for id := 0; id < store.Len(); id++ {
				doc, err := store.ParseDoc(id)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Transform(doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// Selection workload: transform only the documents containing a very
	// high salary — the path/value index skips parsing the rest.
	const threshold = 4900
	b.Run("clob-pvindex-select", func(b *testing.B) {
		eng := xslt.New(sheet)
		for i := 0; i < b.N; i++ {
			ids, used, err := store.SelectDocs("/dept/employees/emp/sal",
				relstore.Pred{Op: relstore.CmpGe, Val: int64(threshold)})
			if err != nil || !used {
				b.Fatal("index not used")
			}
			for _, id := range ids {
				doc, err := store.ParseDoc(id)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Transform(doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("clob-scan-select", func(b *testing.B) {
		eng := xslt.New(sheet)
		for i := 0; i < b.N; i++ {
			// No index available for this spelling: parse and test all.
			for id := 0; id < store.Len(); id++ {
				doc, err := store.ParseDoc(id)
				if err != nil {
					b.Fatal(err)
				}
				hit := false
				for _, sal := range doc.ElementsByName("sal") {
					if v, err2 := strconv.ParseInt(sal.StringValue(), 10, 64); err2 == nil && v >= threshold {
						hit = true
						break
					}
				}
				if hit {
					if _, err := eng.Transform(doc); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// BenchmarkAblationParallelism measures row-parallel SQL/XML execution (the
// paper's "parallel manner" aggregation remark): many departments, each an
// independent driving row of the Example 1 plan.
func BenchmarkAblationParallelism(b *testing.B) {
	db := relstore.NewDB()
	if err := sqlxml.SetupDeptEmp(db); err != nil {
		b.Fatal(err)
	}
	for d := 1000; d < 1400; d++ {
		if _, err := db.Table("dept").Insert(int64(d), fmt.Sprintf("D%d", d), "CITY"); err != nil {
			b.Fatal(err)
		}
		for e := 0; e < 40; e++ {
			if _, err := db.Table("emp").Insert(int64(d*100+e), "E", "S",
				int64(500+(e*397)%4500), int64(d)); err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = db.Table("emp").CreateIndex("deptno")
	exec := sqlxml.NewExecutor(db)
	view := sqlxml.DeptEmpView()
	schema, err := exec.DeriveSchema(view)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Rewrite(xtest.Sheet(b, xslt.PaperStylesheet), schema, core.ModeAuto)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.ExecQueryParallel(plan, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
